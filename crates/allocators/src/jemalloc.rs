//! jemalloc behavioural model: slab runs carved from 2 MiB extents for
//! small classes, size-classed large allocations with dirty-page reuse and
//! time-decay purging. Reproduces the paper's observations: stable but
//! somewhat slower latency on a dedicated system, long tails once reclaim
//! is in the fault path.

use crate::costs::JemallocCosts;
use crate::traits::{AllocHandle, AllocatorKind, SimAllocator};
use hermes_core::DEFAULT_MMAP_THRESHOLD;
use hermes_os::prelude::*;
use hermes_sim::rng::DetRng;
use hermes_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Live {
    size: usize,
    large: bool,
}

/// Simulated jemalloc allocator bound to one process.
#[derive(Debug)]
pub struct JemallocSim {
    proc: ProcId,
    costs: JemallocCosts,
    /// Recycled small objects per size class.
    bins: HashMap<usize, u64>,
    /// Allocations until the current run of each class is exhausted.
    run_left: HashMap<usize, u64>,
    /// Unfaulted bytes remaining in the current extent.
    extent_left: usize,
    /// Dirty (reusable, still-resident) pages from freed large chunks.
    dirty_pages: u64,
    live: HashMap<u64, Live>,
    next_handle: u64,
    last_decay: SimTime,
    rng: DetRng,
}

impl JemallocSim {
    /// Creates the model for a new latency-critical process.
    pub fn new(os: &mut Os, seed: u64) -> Self {
        let proc = os.register_process(ProcKind::LatencyCritical);
        JemallocSim {
            proc,
            costs: JemallocCosts::default(),
            bins: HashMap::new(),
            run_left: HashMap::new(),
            extent_left: 0,
            dirty_pages: 0,
            live: HashMap::new(),
            next_handle: 1,
            last_decay: SimTime::ZERO,
            rng: DetRng::new(seed, "jemalloc"),
        }
    }

    fn noise(&mut self) -> f64 {
        self.rng.tail_multiplier(self.costs.sigma)
    }

    fn class_of(size: usize) -> usize {
        // Simplified jemalloc spacing: next power-of-two quarter.
        let mut c = 16;
        while c < size {
            c += (c / 4).max(16);
        }
        c
    }
}

impl SimAllocator for JemallocSim {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Jemalloc
    }

    fn proc_id(&self) -> ProcId {
        self.proc
    }

    fn advance_to(&mut self, now: SimTime, os: &mut Os) {
        os.advance_to(now);
        // Decay-based purging returns dirty pages to the kernel over time.
        if now > self.last_decay {
            let dt = now.duration_since(self.last_decay).as_secs_f64();
            let purged = (self.dirty_pages as f64 * self.costs.decay_per_sec * dt) as u64;
            let purged = purged.min(self.dirty_pages);
            if purged > 0 {
                self.dirty_pages -= purged;
                os.release_anon(self.proc, purged, false);
            }
            self.last_decay = now;
        }
    }

    fn malloc(
        &mut self,
        size: usize,
        now: SimTime,
        os: &mut Os,
    ) -> Result<(AllocHandle, SimDuration), MemError> {
        self.advance_to(now, os);
        let large = size >= DEFAULT_MMAP_THRESHOLD;
        let mut lat;
        if large {
            let pages = pages_for(size);
            lat = self
                .costs
                .book_large
                .mul_f64(self.rng.tail_multiplier(0.05) * os.write_contention());
            if self.dirty_pages >= pages {
                // Reuse dirty pages; decay already purged a fraction,
                // which must be faulted back cold.
                self.dirty_pages -= pages;
                let cold = (pages as f64 * self.costs.dirty_reuse_cold_fraction) as u64;
                if cold > 0 {
                    os.release_anon(self.proc, cold, false);
                    lat += os.alloc_anon(self.proc, cold, FaultPath::MmapTouch, now)?;
                }
                lat += os.touch_resident(self.proc, pages - cold, now);
            } else {
                lat += os.alloc_anon(self.proc, pages, FaultPath::MmapTouch, now)?;
            }
        } else {
            let class = Self::class_of(size);
            if let Some(n) = self.bins.get_mut(&class) {
                if *n > 0 {
                    *n -= 1;
                    let h = AllocHandle(self.next_handle);
                    self.next_handle += 1;
                    self.live.insert(h.0, Live { size, large });
                    let lat = self.costs.book_small.mul_f64(self.noise())
                        + os.touch_resident(self.proc, 1, now);
                    return Ok((h, lat));
                }
            }
            lat = self.costs.book_small.mul_f64(self.noise());
            if self.run_left.get(&class).copied().unwrap_or(0) == 0 {
                // Refill a run from the extent.
                let run_bytes = (class as u64 * self.costs.run_len).max(16 * 1024) as usize;
                lat += self.costs.run_refill.mul_f64(self.noise());
                if self.extent_left < run_bytes {
                    self.extent_left = self.costs.extent_bytes;
                    lat += os.syscall_cost();
                }
                self.extent_left -= run_bytes.min(self.extent_left);
                lat += os.alloc_anon(self.proc, pages_for(run_bytes), FaultPath::HeapTouch, now)?;
                self.run_left.insert(class, self.costs.run_len);
            }
            *self.run_left.get_mut(&class).expect("entry exists") -= 1;
        }
        let h = AllocHandle(self.next_handle);
        self.next_handle += 1;
        self.live.insert(h.0, Live { size, large });
        Ok((h, lat))
    }

    fn free(&mut self, handle: AllocHandle, now: SimTime, os: &mut Os) -> SimDuration {
        self.advance_to(now, os);
        let Some(l) = self.live.remove(&handle.0) else {
            return SimDuration::ZERO;
        };
        if l.large {
            // Pages stay resident as dirty until decay purges them.
            self.dirty_pages += pages_for(l.size);
            SimDuration::from_nanos(700)
        } else {
            *self.bins.entry(Self::class_of(l.size)).or_insert(0) += 1;
            SimDuration::from_nanos(250)
        }
    }

    fn access(
        &mut self,
        handle: AllocHandle,
        bytes: usize,
        now: SimTime,
        os: &mut Os,
    ) -> SimDuration {
        self.advance_to(now, os);
        if self.live.contains_key(&handle.0) {
            os.touch_resident(self.proc, pages_for(bytes), now)
        } else {
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_os::config::OsConfig;

    fn setup() -> (Os, JemallocSim) {
        let mut os = Os::new(OsConfig::small_test_node());
        let a = JemallocSim::new(&mut os, 2);
        (os, a)
    }

    #[test]
    fn class_spacing_is_monotone() {
        let mut last = 0;
        for s in [1, 16, 17, 100, 1024, 5000, 64 * 1024] {
            let c = JemallocSim::class_of(s);
            assert!(c >= s);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn small_path_amortises_run_refills() {
        let (mut os, mut a) = setup();
        let mut now = SimTime::ZERO;
        let mut lats = Vec::new();
        for _ in 0..200 {
            let (_, lat) = a.malloc(1024, now, &mut os).unwrap();
            lats.push(lat.as_nanos());
            now += lat;
        }
        let avg: u64 = lats.iter().sum::<u64>() / lats.len() as u64;
        assert!((1_500..15_000).contains(&avg), "avg {avg}ns");
        // Refill spikes exist.
        let max = *lats.iter().max().unwrap();
        assert!(max > avg * 2, "max {max} avg {avg}");
    }

    #[test]
    fn large_dedicated_latency_is_stable() {
        let (mut os, mut a) = setup();
        let mut now = SimTime::ZERO;
        let mut lats = Vec::new();
        for _ in 0..50 {
            let (_, lat) = a.malloc(256 * 1024, now, &mut os).unwrap();
            lats.push(lat.as_micros());
            now += lat;
        }
        let avg: u64 = lats.iter().sum::<u64>() / lats.len() as u64;
        let max = *lats.iter().max().unwrap();
        let min = *lats.iter().min().unwrap();
        assert!((600..4_000).contains(&avg), "avg {avg}us");
        assert!(
            (max as f64) < min as f64 * 2.5,
            "stable: min {min} max {max}"
        );
    }

    #[test]
    fn dirty_reuse_is_cheaper_than_cold() {
        let (mut os, mut a) = setup();
        let (h, cold) = a.malloc(512 * 1024, SimTime::ZERO, &mut os).unwrap();
        a.free(h, SimTime::from_micros(1), &mut os);
        let (_, warm) = a
            .malloc(512 * 1024, SimTime::from_micros(2), &mut os)
            .unwrap();
        assert!(warm < cold, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn decay_returns_pages_to_os() {
        let (mut os, mut a) = setup();
        let (h, _) = a.malloc(1 << 20, SimTime::ZERO, &mut os).unwrap();
        a.free(h, SimTime::from_micros(1), &mut os);
        let free_before = os.free_pages();
        a.advance_to(SimTime::from_secs(30), &mut os);
        assert!(os.free_pages() > free_before, "decay purged dirty pages");
    }
}
