//! Fault injection over any [`AllocatorBackend`]: a transparent wrapper
//! that makes allocation failure *testable* on every backend.
//!
//! The real runtimes only exhaust when their gigabyte-scale carve really
//! fills, and the sims only exhaust when the modelled node swaps out —
//! neither is a practical way to exercise a service's degradation paths
//! in a unit test or a short scenario. [`FaultBackend`] injects the
//! failure vocabulary deterministically instead:
//!
//! * **rate faults** — a seeded Bernoulli draw per allocation returns
//!   [`AllocError::Exhausted`] with probability `exhaust_rate`;
//! * **schedule faults** — `every_nth` fails every Nth allocation,
//!   bit-for-bit reproducible independent of the RNG;
//! * **budget faults** — a byte budget caps the live bytes allocated
//!   through the wrapper, turning any backend into a small fixed-size
//!   node that genuinely runs out and recovers when memory is freed;
//! * **latency spikes** — a seeded draw stretches an operation by
//!   `spike` (virtual clocks advance, wall clocks spin), modelling
//!   allocator stalls without failing the request.
//!
//! Everything else — stats, integrity checks, the clock, the backend's
//! identity — passes through, so drivers and matrices see the wrapped
//! backend's own kind. Injection counts are published through the
//! cloneable [`FaultProbe`] carried by the [`FaultConfig`], which keeps
//! working after the backend is boxed into a service.

use crate::backend::{AllocatorBackend, BackendKind, BackendStats};
use crate::traits::AllocHandle;
use hermes_core::rt::{AllocError, IntegrityError};
use hermes_sim::clock::{Clock, ClockHandle};
use hermes_sim::rng::DetRng;
use hermes_sim::time::SimDuration;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of what a [`FaultBackend`] has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// `Exhausted` errors injected by the rate or `every_nth` schedule.
    pub injected_exhausted: u64,
    /// `Exhausted` errors caused by the live-byte budget.
    pub budget_denials: u64,
    /// Latency spikes applied to successful operations.
    pub spikes: u64,
}

impl FaultStats {
    /// All injected allocation failures, regardless of mechanism.
    pub fn total_failures(&self) -> u64 {
        self.injected_exhausted + self.budget_denials
    }
}

#[derive(Debug, Default)]
struct ProbeInner {
    injected_exhausted: AtomicU64,
    budget_denials: AtomicU64,
    spikes: AtomicU64,
}

/// Cloneable window onto a [`FaultBackend`]'s injection counters.
///
/// The probe is carried by the [`FaultConfig`]; cloning the config (as
/// service factories do) shares the same counters, so the party that
/// configured the faults can read what happened even after the backend
/// disappeared into a `Box<dyn Service>`.
#[derive(Debug, Clone, Default)]
pub struct FaultProbe(Arc<ProbeInner>);

impl FaultProbe {
    /// Current injection counts.
    pub fn snapshot(&self) -> FaultStats {
        FaultStats {
            injected_exhausted: self.0.injected_exhausted.load(Ordering::Relaxed),
            budget_denials: self.0.budget_denials.load(Ordering::Relaxed),
            spikes: self.0.spikes.load(Ordering::Relaxed),
        }
    }
}

/// Configuration of one fault-injection wrapper.
///
/// The default injects nothing; compose the builder methods to pick the
/// failure modes. The same seed always produces the same failure
/// schedule against the same operation sequence.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed of the injection RNG (decoupled from the workload seed).
    pub seed: u64,
    /// Probability of injecting `Exhausted` per allocation attempt.
    pub exhaust_rate: f64,
    /// Fail every Nth allocation attempt (1-based; `None` disables).
    pub every_nth: Option<u64>,
    /// Cap on live bytes allocated through the wrapper (`None` = no cap).
    pub budget_bytes: Option<usize>,
    /// Probability of stretching a successful operation by [`spike`].
    ///
    /// [`spike`]: FaultConfig::spike
    pub spike_rate: f64,
    /// Magnitude of an injected latency spike.
    pub spike: SimDuration,
    /// Shared counters updated by the wrapper.
    pub probe: FaultProbe,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            exhaust_rate: 0.0,
            every_nth: None,
            budget_bytes: None,
            spike_rate: 0.0,
            spike: SimDuration::from_micros(100),
            probe: FaultProbe::default(),
        }
    }
}

impl FaultConfig {
    /// A no-fault configuration with the given schedule seed.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..FaultConfig::default()
        }
    }

    /// Injects `Exhausted` with probability `rate` per allocation.
    pub fn with_exhaust_rate(mut self, rate: f64) -> Self {
        self.exhaust_rate = rate;
        self
    }

    /// Fails every `n`th allocation attempt deterministically.
    pub fn with_every_nth(mut self, n: u64) -> Self {
        self.every_nth = Some(n.max(1));
        self
    }

    /// Caps live bytes through the wrapper at `bytes`.
    pub fn with_budget(mut self, bytes: usize) -> Self {
        self.budget_bytes = Some(bytes);
        self
    }

    /// Stretches successful operations by `spike` with probability
    /// `rate`.
    pub fn with_spikes(mut self, rate: f64, spike: SimDuration) -> Self {
        self.spike_rate = rate;
        self.spike = spike;
        self
    }
}

/// A fault-injecting [`AllocatorBackend`] wrapper. See the module docs.
pub struct FaultBackend<B: AllocatorBackend> {
    inner: B,
    cfg: FaultConfig,
    rng: DetRng,
    clock: ClockHandle,
    attempts: u64,
    /// Sizes of live handles, for budget accounting.
    sizes: HashMap<AllocHandle, usize>,
    live_bytes: usize,
}

impl<B: AllocatorBackend> fmt::Debug for FaultBackend<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultBackend")
            .field("kind", &self.inner.kind())
            .field("attempts", &self.attempts)
            .field("live_bytes", &self.live_bytes)
            .finish()
    }
}

impl<B: AllocatorBackend> FaultBackend<B> {
    /// Wraps `inner` with the fault schedule of `cfg`.
    pub fn new(inner: B, cfg: FaultConfig) -> Self {
        let rng = DetRng::new(cfg.seed, "fault-inject");
        let clock = inner.clock();
        FaultBackend {
            inner,
            cfg,
            rng,
            clock,
            attempts: 0,
            sizes: HashMap::new(),
            live_bytes: 0,
        }
    }

    /// Injection counts so far (same data as the config's probe).
    pub fn fault_stats(&self) -> FaultStats {
        self.cfg.probe.snapshot()
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Live bytes currently charged against the budget.
    pub fn budget_live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// Decides whether this allocation attempt of `grow` fresh bytes is
    /// injected away, and with which error.
    fn inject(&mut self, grow: usize) -> Result<(), AllocError> {
        self.attempts += 1;
        if let Some(n) = self.cfg.every_nth {
            if self.attempts % n == 0 {
                self.cfg
                    .probe
                    .0
                    .injected_exhausted
                    .fetch_add(1, Ordering::Relaxed);
                return Err(AllocError::Exhausted);
            }
        }
        if self.cfg.exhaust_rate > 0.0 && self.rng.chance(self.cfg.exhaust_rate) {
            self.cfg
                .probe
                .0
                .injected_exhausted
                .fetch_add(1, Ordering::Relaxed);
            return Err(AllocError::Exhausted);
        }
        if let Some(budget) = self.cfg.budget_bytes {
            if self.live_bytes.saturating_add(grow) > budget {
                self.cfg
                    .probe
                    .0
                    .budget_denials
                    .fetch_add(1, Ordering::Relaxed);
                return Err(AllocError::Exhausted);
            }
        }
        Ok(())
    }

    /// Applies a latency spike with the configured probability; returns
    /// the extra latency, which has already elapsed on the clock.
    fn maybe_spike(&mut self) -> SimDuration {
        if self.cfg.spike_rate <= 0.0 || !self.rng.chance(self.cfg.spike_rate) {
            return SimDuration::ZERO;
        }
        self.cfg.probe.0.spikes.fetch_add(1, Ordering::Relaxed);
        let spike = self.cfg.spike;
        if self.clock.is_virtual() {
            self.clock.advance(spike);
        } else {
            // Wall domain: the convention says reported latencies have
            // already elapsed, so burn the time for real. Spikes are
            // microseconds — spin rather than sleep for precision.
            let t = std::time::Instant::now();
            let target = std::time::Duration::from_nanos(spike.as_nanos());
            while t.elapsed() < target {
                std::hint::spin_loop();
            }
        }
        spike
    }
}

impl<B: AllocatorBackend> AllocatorBackend for FaultBackend<B> {
    fn kind(&self) -> BackendKind {
        self.inner.kind()
    }

    fn clock(&self) -> ClockHandle {
        self.inner.clock()
    }

    fn malloc(&mut self, size: usize) -> Result<(AllocHandle, SimDuration), AllocError> {
        self.inject(size)?;
        let (h, lat) = self.inner.malloc(size)?;
        self.sizes.insert(h, size);
        self.live_bytes += size;
        Ok((h, lat + self.maybe_spike()))
    }

    fn free(&mut self, handle: AllocHandle) -> SimDuration {
        if let Some(size) = self.sizes.remove(&handle) {
            self.live_bytes -= size;
        }
        self.inner.free(handle)
    }

    fn realloc(
        &mut self,
        handle: AllocHandle,
        new_size: usize,
    ) -> Result<(AllocHandle, SimDuration), AllocError> {
        let old = self.sizes.get(&handle).copied().unwrap_or(0);
        self.inject(new_size.saturating_sub(old))?;
        let (h, lat) = self.inner.realloc(handle, new_size)?;
        if let Some(size) = self.sizes.remove(&handle) {
            self.live_bytes -= size;
        }
        self.sizes.insert(h, new_size);
        self.live_bytes += new_size;
        Ok((h, lat + self.maybe_spike()))
    }

    fn access(&mut self, handle: AllocHandle, bytes: usize) -> SimDuration {
        self.inner.access(handle, bytes)
    }

    fn advance(&mut self) {
        self.inner.advance();
    }

    fn stats(&self) -> BackendStats {
        self.inner.stats()
    }

    fn contention(&self) -> f64 {
        self.inner.contention()
    }

    fn check(&self) -> Result<(), IntegrityError> {
        self.inner.check()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::RealSystemBackend;

    #[test]
    fn no_fault_config_is_transparent() {
        let mut b = FaultBackend::new(RealSystemBackend::new(), FaultConfig::default());
        for _ in 0..50 {
            let (h, _) = b.malloc(4096).expect("no faults configured");
            b.free(h);
        }
        assert_eq!(b.fault_stats(), FaultStats::default());
        assert_eq!(b.stats().live, 0);
        assert_eq!(b.stats().alloc_count, 50);
    }

    #[test]
    fn every_nth_schedule_is_exact() {
        let cfg = FaultConfig::new(3).with_every_nth(4);
        let probe = cfg.probe.clone();
        let mut b = FaultBackend::new(RealSystemBackend::new(), cfg);
        let mut failures = Vec::new();
        for i in 1..=20u64 {
            match b.malloc(64) {
                Ok((h, _)) => b.free(h),
                Err(AllocError::Exhausted) => {
                    failures.push(i);
                    SimDuration::ZERO
                }
                Err(e) => panic!("unexpected error: {e}"),
            };
        }
        assert_eq!(failures, vec![4, 8, 12, 16, 20]);
        assert_eq!(probe.snapshot().injected_exhausted, 5);
    }

    #[test]
    fn budget_denies_and_recovers() {
        let cfg = FaultConfig::new(1).with_budget(10 * 1024);
        let mut b = FaultBackend::new(RealSystemBackend::new(), cfg);
        let (h1, _) = b.malloc(6 * 1024).unwrap();
        match b.malloc(6 * 1024) {
            Err(AllocError::Exhausted) => {}
            other => panic!("expected budget denial, got {other:?}"),
        }
        assert_eq!(b.fault_stats().budget_denials, 1);
        b.free(h1);
        let (h2, _) = b.malloc(6 * 1024).expect("budget freed up");
        b.free(h2);
        assert_eq!(b.budget_live_bytes(), 0);
    }

    #[test]
    fn budget_tracks_realloc_delta() {
        let cfg = FaultConfig::new(1).with_budget(10 * 1024);
        let mut b = FaultBackend::new(RealSystemBackend::new(), cfg);
        let (h, _) = b.malloc(4 * 1024).unwrap();
        // Growing by 12K exceeds the budget; the original stays live.
        match b.realloc(h, 16 * 1024) {
            Err(AllocError::Exhausted) => {}
            other => panic!("expected budget denial, got {other:?}"),
        }
        let (h, _) = b.realloc(h, 8 * 1024).expect("within budget");
        assert_eq!(b.budget_live_bytes(), 8 * 1024);
        b.free(h);
    }

    #[test]
    fn spikes_elapse_on_the_clock_and_count() {
        use crate::backend::{SimBackend, SimEnv};
        use crate::traits::AllocatorKind;
        use hermes_core::HermesConfig;
        use hermes_os::config::OsConfig;
        let env = SimEnv::new(OsConfig::small_test_node());
        let inner = SimBackend::new(AllocatorKind::Glibc, &env, 5, &HermesConfig::default());
        let spike = SimDuration::from_micros(500);
        let cfg = FaultConfig::new(2).with_spikes(1.0, spike);
        let mut b = FaultBackend::new(inner, cfg);
        let t0 = env.now();
        let (h, lat) = b.malloc(1024).unwrap();
        assert!(lat >= spike, "latency includes the spike");
        assert_eq!(env.now(), t0 + lat, "spike elapsed on the virtual clock");
        assert_eq!(b.fault_stats().spikes, 1);
        b.free(h);
    }
}
