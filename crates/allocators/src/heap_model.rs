//! Byte-level model of a ptmalloc-style main heap (allocated area, top
//! chunk, program break, recycle bins), shared by the Glibc and Hermes
//! simulated allocators.
//!
//! Physical effects (faults, frames) are charged against `hermes-os` by
//! the embedding allocator; this model tracks the *address-space* geometry
//! that decides when those effects occur.

use hermes_os::config::PAGE_SIZE;
use std::collections::HashMap;

const CHUNK_OVERHEAD: usize = 16;
const CHUNK_ALIGN: usize = 16;

/// Outcome of a small allocation against the heap model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallAlloc {
    /// Served from a recycle bin: memory already touched.
    Recycled {
        /// Pages the chunk spans (for swap-in probes under pressure).
        pages: u64,
    },
    /// Carved from the top chunk / fresh break extension.
    Fresh {
        /// Never-touched pages that fault on first write.
        new_pages: u64,
        /// Whether the program break had to grow (`sbrk` call).
        grew_break: bool,
    },
}

/// The heap-geometry model.
#[derive(Debug, Clone)]
pub struct HeapModel {
    /// End of the allocated area, bytes from heap start.
    used: usize,
    /// Touch high-water mark (virtual-physical mappings constructed).
    touched: usize,
    /// Program break.
    brk: usize,
    /// Free chunks by size class: class -> count.
    bins: HashMap<usize, u64>,
    binned_bytes: usize,
}

impl Default for HeapModel {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapModel {
    /// An empty heap.
    pub fn new() -> Self {
        HeapModel {
            used: 0,
            touched: 0,
            brk: 0,
            bins: HashMap::new(),
            binned_bytes: 0,
        }
    }

    fn class_of(size: usize) -> usize {
        (size + CHUNK_OVERHEAD).div_ceil(CHUNK_ALIGN) * CHUNK_ALIGN
    }

    /// Pages spanned by a chunk of `size` bytes.
    pub fn pages_of(size: usize) -> u64 {
        (Self::class_of(size)).div_ceil(PAGE_SIZE) as u64
    }

    /// Bytes in recycle bins.
    pub fn binned_bytes(&self) -> usize {
        self.binned_bytes
    }

    /// Free space in the top chunk (break minus allocated area).
    pub fn top_free(&self) -> usize {
        self.brk - self.used
    }

    /// Touched-but-unallocated bytes: memory that can be handed out
    /// without any fault (Hermes' committed reserve).
    pub fn reserve_ready(&self) -> usize {
        self.touched.saturating_sub(self.used)
    }

    /// Program break in bytes.
    pub fn brk_bytes(&self) -> usize {
        self.brk
    }

    /// Allocates a small chunk, preferring the recycle bins.
    pub fn alloc_small(&mut self, size: usize) -> SmallAlloc {
        let class = Self::class_of(size);
        if let Some(n) = self.bins.get_mut(&class) {
            if *n > 0 {
                *n -= 1;
                self.binned_bytes -= class;
                return SmallAlloc::Recycled {
                    pages: Self::pages_of(size),
                };
            }
        }
        let grew = self.used + class > self.brk;
        if grew {
            // Glibc expands by exactly the shortfall, page-rounded.
            self.brk = (self.used + class).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        }
        self.used += class;
        let new_pages = if self.used > self.touched {
            let target = self.used.div_ceil(PAGE_SIZE) * PAGE_SIZE;
            let pages = (target - self.touched.div_ceil(PAGE_SIZE) * PAGE_SIZE) / PAGE_SIZE;
            self.touched = target;
            pages as u64
        } else {
            0
        };
        SmallAlloc::Fresh {
            new_pages,
            grew_break: grew,
        }
    }

    /// Frees a small chunk back into its recycle bin.
    pub fn free_small(&mut self, size: usize) {
        let class = Self::class_of(size);
        *self.bins.entry(class).or_insert(0) += 1;
        self.binned_bytes += class;
    }

    /// Extends the break *and* the touch watermark by `bytes`
    /// (the management thread's reservation step: `sbrk` + `mlock`).
    /// Returns the newly touched pages.
    pub fn reserve(&mut self, bytes: usize) -> u64 {
        let target = (self.touched + bytes).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let pages = (target - self.touched.div_ceil(PAGE_SIZE) * PAGE_SIZE) / PAGE_SIZE;
        self.touched = target;
        self.brk = self.brk.max(self.touched);
        pages as u64
    }

    /// Shrinks the top chunk to `keep` bytes (negative `sbrk`). Returns
    /// the released, previously touched pages (to hand back to the OS).
    pub fn trim(&mut self, keep: usize) -> u64 {
        let new_brk = (self.used + keep).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        if new_brk >= self.brk {
            return 0;
        }
        self.brk = new_brk;
        if self.touched > self.brk {
            let released = (self.touched - self.brk) / PAGE_SIZE;
            self.touched = self.brk;
            released as u64
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocations_fault_about_every_fourth_1kb() {
        let mut h = HeapModel::new();
        let mut faults = 0u64;
        for _ in 0..400 {
            if let SmallAlloc::Fresh { new_pages, .. } = h.alloc_small(1024) {
                faults += new_pages;
            }
        }
        // 400 x 1040B chunks = 416000B ≈ 101.6 pages.
        assert!((95..=110).contains(&faults), "faults {faults}");
    }

    #[test]
    fn recycle_bins_serve_exact_classes() {
        let mut h = HeapModel::new();
        h.alloc_small(1024);
        h.free_small(1024);
        assert!(h.binned_bytes() > 0);
        match h.alloc_small(1024) {
            SmallAlloc::Recycled { pages } => assert_eq!(pages, 1),
            other => panic!("expected recycle, got {other:?}"),
        }
        assert_eq!(h.binned_bytes(), 0);
        // A different class does not hit the bin.
        h.free_small(1024);
        assert!(matches!(h.alloc_small(512), SmallAlloc::Fresh { .. }));
    }

    #[test]
    fn reserve_eliminates_faults() {
        let mut h = HeapModel::new();
        let pages = h.reserve(64 * 1024);
        assert_eq!(pages, 16);
        assert_eq!(h.reserve_ready(), 64 * 1024);
        for _ in 0..60 {
            match h.alloc_small(1024) {
                SmallAlloc::Fresh {
                    new_pages,
                    grew_break,
                } => {
                    assert_eq!(new_pages, 0, "reserved memory never faults");
                    assert!(!grew_break, "break already extended");
                }
                SmallAlloc::Recycled { .. } => panic!("no frees yet"),
            }
        }
        assert!(h.reserve_ready() < 64 * 1024);
    }

    #[test]
    fn trim_releases_touched_pages() {
        let mut h = HeapModel::new();
        h.reserve(128 * 1024);
        let released = h.trim(4096);
        assert!(released > 0);
        assert!(h.top_free() <= 8192);
        assert_eq!(h.trim(4096), 0, "second trim is a no-op");
    }

    #[test]
    fn break_grows_by_shortfall() {
        let mut h = HeapModel::new();
        match h.alloc_small(100) {
            SmallAlloc::Fresh { grew_break, .. } => assert!(grew_break),
            _ => unreachable!(),
        }
        assert_eq!(h.brk_bytes(), PAGE_SIZE);
        // Next small alloc fits in the top chunk.
        match h.alloc_small(100) {
            SmallAlloc::Fresh {
                grew_break,
                new_pages,
            } => {
                assert!(!grew_break);
                assert_eq!(new_pages, 0);
            }
            _ => unreachable!(),
        }
    }
}
