//! The simulated-allocator interface shared by all four models.

use hermes_os::prelude::*;
use hermes_sim::time::{SimDuration, SimTime};
use std::fmt;

/// Which allocator model is in use (the paper's comparison set, §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// Stock Glibc ptmalloc (the paper's primary baseline).
    Glibc,
    /// jemalloc (Redis' default allocator).
    Jemalloc,
    /// TCMalloc (Google's thread-caching malloc).
    Tcmalloc,
    /// Hermes (the paper's contribution).
    Hermes,
}

impl AllocatorKind {
    /// All four kinds, in the paper's plotting order.
    pub const ALL: [AllocatorKind; 4] = [
        AllocatorKind::Hermes,
        AllocatorKind::Glibc,
        AllocatorKind::Jemalloc,
        AllocatorKind::Tcmalloc,
    ];

    /// Display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::Glibc => "Glibc",
            AllocatorKind::Jemalloc => "jemalloc",
            AllocatorKind::Tcmalloc => "TCMalloc",
            AllocatorKind::Hermes => "Hermes",
        }
    }
}

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Opaque handle to a live simulated allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocHandle(pub u64);

/// A simulated user-space allocator bound to one process.
///
/// All operations take the current virtual instant and the shared OS; they
/// return the latency the calling thread experiences. Implementations
/// fast-forward their background activity (management threads, decay
/// purging) before serving the foreground operation.
///
/// `Send` is required so the [`crate::backend::SimBackend`] adapter —
/// which owns one of these behind the backend-agnostic API — can move
/// between threads like the real backends do.
pub trait SimAllocator: Send {
    /// Which model this is.
    fn kind(&self) -> AllocatorKind;

    /// The process this allocator belongs to.
    fn proc_id(&self) -> ProcId;

    /// Fast-forwards background work to `now`.
    fn advance_to(&mut self, now: SimTime, os: &mut Os);

    /// `malloc(size)` followed by the first write to the returned memory
    /// (the paper measures allocation latency through data insertion, so
    /// mapping-construction faults are part of the cost).
    ///
    /// # Errors
    ///
    /// Propagates [`MemError`] when physical memory cannot be obtained.
    fn malloc(
        &mut self,
        size: usize,
        now: SimTime,
        os: &mut Os,
    ) -> Result<(AllocHandle, SimDuration), MemError>;

    /// `free` of a live handle. Returns the (small) latency.
    fn free(&mut self, handle: AllocHandle, now: SimTime, os: &mut Os) -> SimDuration;

    /// Touches `bytes` of a live allocation (data access by the service);
    /// may stall on swap-in under pressure.
    fn access(
        &mut self,
        handle: AllocHandle,
        bytes: usize,
        now: SimTime,
        os: &mut Os,
    ) -> SimDuration;

    /// Reserved-but-unused bytes (Hermes overhead metric, §5.5); zero for
    /// the baselines.
    fn reserved_unused(&self) -> usize {
        0
    }

    /// Cumulative management-thread busy time (§5.5); zero for baselines.
    fn management_busy(&self) -> SimDuration {
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(AllocatorKind::Glibc.name(), "Glibc");
        assert_eq!(AllocatorKind::Hermes.to_string(), "Hermes");
        assert_eq!(AllocatorKind::ALL.len(), 4);
    }
}
