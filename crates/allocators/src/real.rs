//! Real wall-clock backends: the Hermes runtime and the process
//! allocator behind the same [`AllocatorBackend`] handle API.
//!
//! Unlike the simulated models, these allocate *actual memory* and
//! report *measured* `Instant` latencies. Every allocation is written
//! end to end after it is obtained — the paper measures allocation
//! latency through data insertion, so mapping-construction faults are
//! part of the cost, exactly as in the sims.

use crate::backend::{AllocatorBackend, BackendKind, BackendStats};
use crate::traits::AllocHandle;
use hermes_core::rt::{AllocError, ArenaError, HermesHeap, HermesHeapConfig, IntegrityError};
use hermes_core::HermesConfig;
use hermes_sim::clock::{ClockHandle, WallClock};
use hermes_sim::time::SimDuration;
use std::alloc::Layout;
use std::fmt;
use std::ptr::NonNull;
use std::time::Instant;

/// Alignment of every backend allocation (matches the runtime's chunk
/// granularity).
const BACKEND_ALIGN: usize = 16;

/// One live real allocation.
#[derive(Clone, Copy)]
struct Slot {
    addr: usize,
    size: usize,
}

/// Handle table: slab of live allocations, handles are slot indices.
/// Freed slots are recycled, so long churny runs do not grow the table.
#[derive(Default)]
struct HandleTable {
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    live_bytes: usize,
}

impl HandleTable {
    fn insert(&mut self, addr: usize, size: usize) -> AllocHandle {
        self.live_bytes += size;
        let slot = Slot { addr, size };
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                AllocHandle(i as u64)
            }
            None => {
                self.slots.push(Some(slot));
                AllocHandle((self.slots.len() - 1) as u64)
            }
        }
    }

    fn get(&self, h: AllocHandle) -> Option<Slot> {
        self.slots.get(h.0 as usize).copied().flatten()
    }

    fn remove(&mut self, h: AllocHandle) -> Option<Slot> {
        let slot = self.slots.get_mut(h.0 as usize)?.take()?;
        self.free.push(h.0 as usize);
        self.live_bytes -= slot.size;
        Some(slot)
    }

    fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

fn layout_for(size: usize) -> Result<Layout, AllocError> {
    Layout::from_size_align(size.max(1), BACKEND_ALIGN).map_err(|_| AllocError::Oversized {
        requested: size,
        limit: isize::MAX as usize,
    })
}

fn elapsed(since: Instant) -> SimDuration {
    SimDuration::from_nanos(since.elapsed().as_nanos().min(u64::MAX as u128) as u64)
}

/// Touches `bytes` of the allocation at `addr` (read-sum, volatile so
/// the optimiser cannot elide the walk).
///
/// # Safety
///
/// `[addr, addr + bytes)` must be initialised memory owned by a live
/// allocation.
unsafe fn touch_read(addr: usize, bytes: usize) -> u64 {
    let mut sum = 0u64;
    let p = addr as *const u8;
    let mut i = 0;
    while i < bytes {
        // SAFETY: i < bytes, within the caller-guaranteed range.
        sum = sum.wrapping_add(unsafe { std::ptr::read_volatile(p.add(i)) } as u64);
        i += 64; // one touch per cache line
    }
    sum
}

/// The real Hermes runtime as a backend: arenas, thread caches and the
/// live memory-management thread, measured on a wall clock.
pub struct RealHermesBackend {
    heap: HermesHeap,
    clock: WallClock,
    table: HandleTable,
    allocs: u64,
    frees: u64,
    reallocs: u64,
}

impl fmt::Debug for RealHermesBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RealHermesBackend")
            .field("live", &self.table.live())
            .field("heap", &self.heap)
            .finish()
    }
}

impl RealHermesBackend {
    /// Boots a heap with default capacities over `cfg` and starts the
    /// management thread.
    ///
    /// # Errors
    ///
    /// Propagates [`ArenaError`] when the backing cannot be reserved.
    pub fn new(cfg: HermesConfig) -> Result<Self, ArenaError> {
        Self::with_heap_config(HermesHeapConfig {
            hermes: cfg,
            ..HermesHeapConfig::default()
        })
    }

    /// Boots a heap with explicit sizing and starts the management
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates [`ArenaError`] when the backing cannot be reserved.
    pub fn with_heap_config(cfg: HermesHeapConfig) -> Result<Self, ArenaError> {
        let heap = HermesHeap::new(cfg)?;
        heap.start_manager();
        Ok(RealHermesBackend {
            heap,
            clock: WallClock::new(),
            table: HandleTable::default(),
            allocs: 0,
            frees: 0,
            reallocs: 0,
        })
    }

    /// The underlying runtime (counter and arena inspection).
    pub fn heap(&self) -> &HermesHeap {
        &self.heap
    }
}

impl AllocatorBackend for RealHermesBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::RealHermes
    }

    fn clock(&self) -> ClockHandle {
        ClockHandle::Wall(self.clock)
    }

    fn malloc(&mut self, size: usize) -> Result<(AllocHandle, SimDuration), AllocError> {
        let layout = layout_for(size)?;
        let t = Instant::now();
        let p = self.heap.allocate(layout)?;
        // First write: data insertion, faulting any cold pages.
        // SAFETY: fresh allocation of `layout.size()` bytes.
        unsafe { std::ptr::write_bytes(p.as_ptr(), 0xA5, layout.size()) };
        let lat = elapsed(t);
        self.allocs += 1;
        Ok((self.table.insert(p.as_ptr() as usize, size), lat))
    }

    fn free(&mut self, handle: AllocHandle) -> SimDuration {
        let Some(slot) = self.table.remove(handle) else {
            return SimDuration::ZERO;
        };
        let layout = layout_for(slot.size).expect("live slot had a valid layout");
        let t = Instant::now();
        // SAFETY: the slot was inserted by `malloc` with this layout and
        // is removed from the table exactly once.
        unsafe {
            self.heap
                .deallocate(NonNull::new_unchecked(slot.addr as *mut u8), layout)
        };
        self.frees += 1;
        elapsed(t)
    }

    fn realloc(
        &mut self,
        handle: AllocHandle,
        new_size: usize,
    ) -> Result<(AllocHandle, SimDuration), AllocError> {
        let old = self.table.get(handle).ok_or(AllocError::Exhausted)?;
        let new_layout = layout_for(new_size)?;
        let t = Instant::now();
        let p = self.heap.allocate(new_layout)?;
        let keep = old.size.min(new_size);
        // SAFETY: both regions are live and at least `keep` bytes; the
        // destination is fresh, so the ranges cannot overlap.
        unsafe {
            std::ptr::copy_nonoverlapping(old.addr as *const u8, p.as_ptr(), keep);
            std::ptr::write_bytes(p.as_ptr().add(keep), 0xA5, new_layout.size() - keep);
        }
        let lat = elapsed(t);
        let lat = lat + self.free(handle);
        self.allocs += 1;
        self.reallocs += 1;
        Ok((self.table.insert(p.as_ptr() as usize, new_size), lat))
    }

    fn access(&mut self, handle: AllocHandle, bytes: usize) -> SimDuration {
        let Some(slot) = self.table.get(handle) else {
            return SimDuration::ZERO;
        };
        let t = Instant::now();
        // SAFETY: the slot is live and `malloc` initialised all of it.
        let sum = unsafe { touch_read(slot.addr, bytes.min(slot.size)) };
        std::hint::black_box(sum);
        elapsed(t)
    }

    fn advance(&mut self) {
        // The management thread runs for real; nothing to fast-forward.
    }

    fn stats(&self) -> BackendStats {
        let c = self.heap.counters();
        let hs = self.heap.heap_stats();
        let ls = self.heap.large_stats();
        BackendStats {
            alloc_count: self.allocs,
            free_count: self.frees,
            realloc_count: self.reallocs,
            live: self.table.live() as u64,
            live_bytes: self.table.live_bytes,
            reserved_unused_bytes: self.heap.reserved_unused_bytes(),
            management_busy: SimDuration::from_nanos(c.manager_busy_ns),
            manager_rounds: c.manager_rounds,
            committed_bytes: hs.committed + ls.committed,
            backing_reserved_bytes: hs.backing_reserved + ls.backing_reserved,
            decommitted_bytes: hs.decommitted + ls.decommitted,
            remote_queued: c.remote_queued_bytes as usize,
        }
    }

    fn check(&self) -> Result<(), IntegrityError> {
        self.heap.check_integrity()
    }
}

impl Drop for RealHermesBackend {
    fn drop(&mut self) {
        // Return this thread's magazines before the heap goes away, so
        // a drop-then-recreate sequence in one thread starts clean.
        self.heap.drain_thread_cache();
        self.heap.stop_manager();
    }
}

/// The process allocator (`std::alloc`) as a wall-clock baseline
/// backend: what the service would see with no reservation machinery.
pub struct RealSystemBackend {
    clock: WallClock,
    table: HandleTable,
    allocs: u64,
    frees: u64,
    reallocs: u64,
}

impl fmt::Debug for RealSystemBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RealSystemBackend")
            .field("live", &self.table.live())
            .finish()
    }
}

impl RealSystemBackend {
    /// A fresh baseline backend.
    pub fn new() -> Self {
        RealSystemBackend {
            clock: WallClock::new(),
            table: HandleTable::default(),
            allocs: 0,
            frees: 0,
            reallocs: 0,
        }
    }
}

impl Default for RealSystemBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocatorBackend for RealSystemBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::RealSystem
    }

    fn clock(&self) -> ClockHandle {
        ClockHandle::Wall(self.clock)
    }

    fn malloc(&mut self, size: usize) -> Result<(AllocHandle, SimDuration), AllocError> {
        let layout = layout_for(size)?;
        let t = Instant::now();
        // SAFETY: layout has non-zero size by construction.
        let p = unsafe { std::alloc::alloc(layout) };
        let p = NonNull::new(p).ok_or(AllocError::Exhausted)?;
        // SAFETY: fresh allocation of `layout.size()` bytes.
        unsafe { std::ptr::write_bytes(p.as_ptr(), 0xA5, layout.size()) };
        let lat = elapsed(t);
        self.allocs += 1;
        Ok((self.table.insert(p.as_ptr() as usize, size), lat))
    }

    fn free(&mut self, handle: AllocHandle) -> SimDuration {
        let Some(slot) = self.table.remove(handle) else {
            return SimDuration::ZERO;
        };
        let layout = layout_for(slot.size).expect("live slot had a valid layout");
        let t = Instant::now();
        // SAFETY: allocated by `std::alloc::alloc` with this layout,
        // freed exactly once.
        unsafe { std::alloc::dealloc(slot.addr as *mut u8, layout) };
        self.frees += 1;
        elapsed(t)
    }

    fn realloc(
        &mut self,
        handle: AllocHandle,
        new_size: usize,
    ) -> Result<(AllocHandle, SimDuration), AllocError> {
        let old = self.table.get(handle).ok_or(AllocError::Exhausted)?;
        let old_layout = layout_for(old.size).expect("live slot had a valid layout");
        let new_layout = layout_for(new_size)?;
        let t = Instant::now();
        // SAFETY: the slot's pointer came from `alloc` with `old_layout`
        // and `new_layout.size()` is non-zero.
        let p = unsafe { std::alloc::realloc(old.addr as *mut u8, old_layout, new_layout.size()) };
        let p = NonNull::new(p).ok_or(AllocError::Exhausted)?;
        if new_size > old.size {
            // SAFETY: the grown tail is fresh memory of the new block.
            unsafe { std::ptr::write_bytes(p.as_ptr().add(old.size), 0xA5, new_size - old.size) };
        }
        let lat = elapsed(t);
        // The old pointer is consumed by realloc: retire the handle
        // without double-freeing.
        self.table.remove(handle);
        self.frees += 1;
        self.allocs += 1;
        self.reallocs += 1;
        Ok((self.table.insert(p.as_ptr() as usize, new_size), lat))
    }

    fn access(&mut self, handle: AllocHandle, bytes: usize) -> SimDuration {
        let Some(slot) = self.table.get(handle) else {
            return SimDuration::ZERO;
        };
        let t = Instant::now();
        // SAFETY: the slot is live and `malloc` initialised all of it.
        let sum = unsafe { touch_read(slot.addr, bytes.min(slot.size)) };
        std::hint::black_box(sum);
        elapsed(t)
    }

    fn advance(&mut self) {}

    fn stats(&self) -> BackendStats {
        BackendStats {
            alloc_count: self.allocs,
            free_count: self.frees,
            realloc_count: self.reallocs,
            live: self.table.live() as u64,
            live_bytes: self.table.live_bytes,
            reserved_unused_bytes: 0,
            management_busy: SimDuration::ZERO,
            manager_rounds: 0,
            committed_bytes: 0,
            backing_reserved_bytes: 0,
            decommitted_bytes: 0,
            remote_queued: 0,
        }
    }
}

impl Drop for RealSystemBackend {
    fn drop(&mut self) {
        // Leak nothing: free whatever the driver left live.
        for i in 0..self.table.slots.len() {
            if let Some(slot) = self.table.slots[i].take() {
                let layout = layout_for(slot.size).expect("live slot had a valid layout");
                // SAFETY: live allocation of this backend, freed once.
                unsafe { std::alloc::dealloc(slot.addr as *mut u8, layout) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_sim::clock::Clock;

    #[test]
    fn real_hermes_round_trip_with_live_manager() {
        let mut b = RealHermesBackend::with_heap_config(HermesHeapConfig::small()).unwrap();
        assert!(b.heap().manager_running());
        let (h, lat) = b.malloc(1024).unwrap();
        assert!(lat > SimDuration::ZERO, "measured latency is nonzero");
        let a = b.access(h, 1024);
        let _ = a;
        let (h2, _) = b.realloc(h, 4096).unwrap();
        b.free(h2);
        let s = b.stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.alloc_count, 2);
        assert_eq!(s.free_count, 2);
        assert_eq!(s.realloc_count, 1);
        b.check().unwrap();
        assert!(!b.clock().is_virtual());
    }

    #[test]
    fn real_hermes_reports_oversized() {
        let mut b = RealHermesBackend::with_heap_config(HermesHeapConfig::small()).unwrap();
        match b.malloc(1 << 40) {
            Err(AllocError::Oversized { .. }) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn real_system_round_trip_preserves_content() {
        let mut b = RealSystemBackend::new();
        let (h, _) = b.malloc(100).unwrap();
        let (h2, _) = b.realloc(h, 10_000).unwrap();
        let slot = b.table.get(h2).unwrap();
        // SAFETY: slot is live; first 100 bytes were written by malloc.
        let first = unsafe { std::ptr::read(slot.addr as *const u8) };
        assert_eq!(first, 0xA5, "realloc preserved the payload");
        b.free(h2);
        assert_eq!(b.stats().live, 0);
    }

    #[test]
    fn real_system_drop_frees_leftovers() {
        let mut b = RealSystemBackend::new();
        for _ in 0..16 {
            b.malloc(4096).unwrap();
        }
        assert_eq!(b.stats().live, 16);
        drop(b); // miri/asan would flag a leak here if Drop regressed
    }
}
