//! TCMalloc behavioural model: per-thread caches with batch refills from
//! the central free lists, falling through to the page heap. Reproduces
//! the paper's observation — lowest average latency of the baselines but a
//! very long tail, in all three memory scenarios.

use crate::costs::TcmallocCosts;
use crate::traits::{AllocHandle, AllocatorKind, SimAllocator};
use hermes_core::DEFAULT_MMAP_THRESHOLD;
use hermes_os::prelude::*;
use hermes_sim::rng::DetRng;
use hermes_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Live {
    size: usize,
    large: bool,
}

/// Simulated TCMalloc allocator bound to one process.
#[derive(Debug)]
pub struct TcmallocSim {
    proc: ProcId,
    costs: TcmallocCosts,
    /// Objects available in the thread cache, per class.
    cache: HashMap<usize, u64>,
    /// Freed span pages retained by the page heap (warm reuse).
    span_pool_pages: u64,
    live: HashMap<u64, Live>,
    next_handle: u64,
    rng: DetRng,
}

impl TcmallocSim {
    /// Creates the model for a new latency-critical process.
    pub fn new(os: &mut Os, seed: u64) -> Self {
        let proc = os.register_process(ProcKind::LatencyCritical);
        TcmallocSim {
            proc,
            costs: TcmallocCosts::default(),
            cache: HashMap::new(),
            span_pool_pages: 0,
            live: HashMap::new(),
            next_handle: 1,
            rng: DetRng::new(seed, "tcmalloc"),
        }
    }

    fn class_of(size: usize) -> usize {
        size.next_power_of_two().max(16)
    }

    fn tail_noise(&mut self) -> f64 {
        self.rng.tail_multiplier(self.costs.sigma)
    }
}

impl SimAllocator for TcmallocSim {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Tcmalloc
    }

    fn proc_id(&self) -> ProcId {
        self.proc
    }

    fn advance_to(&mut self, now: SimTime, os: &mut Os) {
        os.advance_to(now);
    }

    fn malloc(
        &mut self,
        size: usize,
        now: SimTime,
        os: &mut Os,
    ) -> Result<(AllocHandle, SimDuration), MemError> {
        self.advance_to(now, os);
        let large = size >= DEFAULT_MMAP_THRESHOLD;
        let mut lat;
        if large {
            let pages = pages_for(size);
            lat = self
                .costs
                .book_large
                .mul_f64(self.rng.tail_multiplier(0.10) * os.write_contention());
            if self.span_pool_pages >= pages {
                // Warm span reuse.
                self.span_pool_pages -= pages;
                lat += os.touch_resident(self.proc, pages, now);
            } else {
                lat += self.costs.span_acquire.mul_f64(self.tail_noise());
                lat += os.alloc_anon(self.proc, pages, FaultPath::MmapTouch, now)?;
            }
        } else {
            let class = Self::class_of(size);
            let cached = self.cache.entry(class).or_insert(0);
            if *cached > 0 {
                *cached -= 1;
                lat = self.costs.cache_hit.mul_f64(self.rng.tail_multiplier(0.15));
                lat += os.touch_resident(self.proc, 1, now);
            } else {
                // Refill from the central free list under its lock.
                lat = self.costs.central_refill.mul_f64(self.tail_noise());
                if self.rng.chance(self.costs.page_heap_fraction) {
                    // Central list empty too: fetch a span from the page
                    // heap and fault it in — the long-tail path.
                    lat += self.costs.span_acquire.mul_f64(self.tail_noise());
                    lat += os.alloc_anon(
                        self.proc,
                        pages_for(self.costs.span_bytes.min(32 * 1024)),
                        FaultPath::HeapTouch,
                        now,
                    )?;
                }
                *self.cache.entry(class).or_insert(0) += self.costs.batch_len - 1;
            }
        }
        let h = AllocHandle(self.next_handle);
        self.next_handle += 1;
        self.live.insert(h.0, Live { size, large });
        Ok((h, lat))
    }

    fn free(&mut self, handle: AllocHandle, now: SimTime, os: &mut Os) -> SimDuration {
        self.advance_to(now, os);
        let Some(l) = self.live.remove(&handle.0) else {
            return SimDuration::ZERO;
        };
        if l.large {
            self.span_pool_pages += pages_for(l.size);
            SimDuration::from_nanos(600)
        } else {
            *self.cache.entry(Self::class_of(l.size)).or_insert(0) += 1;
            SimDuration::from_nanos(150)
        }
    }

    fn access(
        &mut self,
        handle: AllocHandle,
        bytes: usize,
        now: SimTime,
        os: &mut Os,
    ) -> SimDuration {
        self.advance_to(now, os);
        if self.live.contains_key(&handle.0) {
            os.touch_resident(self.proc, pages_for(bytes), now)
        } else {
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_os::config::OsConfig;

    fn setup() -> (Os, TcmallocSim) {
        let mut os = Os::new(OsConfig::small_test_node());
        let a = TcmallocSim::new(&mut os, 3);
        (os, a)
    }

    #[test]
    fn average_is_low_but_tail_is_long() {
        let (mut os, mut a) = setup();
        let mut now = SimTime::ZERO;
        let mut lats: Vec<u64> = Vec::new();
        for _ in 0..2000 {
            let (_, lat) = a.malloc(1024, now, &mut os).unwrap();
            lats.push(lat.as_nanos());
            now += lat;
        }
        lats.sort_unstable();
        let avg = lats.iter().sum::<u64>() / lats.len() as u64;
        let p50 = lats[lats.len() / 2];
        let p999 = lats[lats.len() * 999 / 1000];
        assert!(avg < 4_000, "avg {avg}ns stays low");
        assert!(p50 <= 1_500, "p50 {p50}ns is the cache hit");
        assert!(p999 > avg * 5, "p999 {p999} much larger than avg {avg}");
    }

    #[test]
    fn span_reuse_after_free_is_warm() {
        let (mut os, mut a) = setup();
        let (h, cold) = a.malloc(256 * 1024, SimTime::ZERO, &mut os).unwrap();
        a.free(h, SimTime::from_micros(1), &mut os);
        let (_, warm) = a
            .malloc(256 * 1024, SimTime::from_micros(2), &mut os)
            .unwrap();
        // Warm spans skip span acquisition and mapping construction but
        // still pay the per-request overhead.
        assert!(warm < cold, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn cache_hits_dominate_after_refill() {
        let (mut os, mut a) = setup();
        let mut now = SimTime::ZERO;
        let mut cheap = 0;
        for i in 0..64 {
            let (_, lat) = a.malloc(100, now, &mut os).unwrap();
            now += lat;
            if i > 0 && lat < SimDuration::from_micros(3) {
                cheap += 1;
            }
        }
        assert!(cheap >= 50, "cheap {cheap}/63 hits");
    }
}
