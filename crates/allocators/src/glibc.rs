//! The stock Glibc (ptmalloc) allocator model — the paper's primary
//! baseline (§2.1): on-demand mapping construction, exact-shortfall break
//! growth, immediate `munmap` of large chunks.

use crate::costs::GlibcCosts;
use crate::heap_model::{HeapModel, SmallAlloc};
use crate::traits::{AllocHandle, AllocatorKind, SimAllocator};
use hermes_core::DEFAULT_MMAP_THRESHOLD;
use hermes_os::prelude::*;
use hermes_sim::rng::DetRng;
use hermes_sim::time::{SimDuration, SimTime};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct Live {
    size: usize,
    mmapped: bool,
}

/// Simulated Glibc allocator bound to one process.
#[derive(Debug)]
pub struct GlibcSim {
    proc: ProcId,
    heap: HeapModel,
    live: HashMap<u64, Live>,
    next_handle: u64,
    costs: GlibcCosts,
    rng: DetRng,
}

impl GlibcSim {
    /// Creates the model for a new latency-critical process.
    pub fn new(os: &mut Os, seed: u64) -> Self {
        let proc = os.register_process(ProcKind::LatencyCritical);
        GlibcSim {
            proc,
            heap: HeapModel::new(),
            live: HashMap::new(),
            next_handle: 1,
            costs: GlibcCosts::default(),
            rng: DetRng::new(seed, "glibc"),
        }
    }

    fn noise(&mut self) -> f64 {
        self.rng.tail_multiplier(self.costs.sigma)
    }
}

impl SimAllocator for GlibcSim {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Glibc
    }

    fn proc_id(&self) -> ProcId {
        self.proc
    }

    fn advance_to(&mut self, now: SimTime, os: &mut Os) {
        os.advance_to(now);
    }

    fn malloc(
        &mut self,
        size: usize,
        now: SimTime,
        os: &mut Os,
    ) -> Result<(AllocHandle, SimDuration), MemError> {
        self.advance_to(now, os);
        let mmapped = size >= DEFAULT_MMAP_THRESHOLD;
        let mut lat;
        if mmapped {
            // mmap syscall + per-request overhead, then the mapping is
            // constructed page by page on the first write.
            let n = self.rng.tail_multiplier(self.costs.sigma_large);
            lat = self.costs.book_large.mul_f64(n * os.write_contention()) + os.syscall_cost();
            lat += os.alloc_anon(self.proc, pages_for(size), FaultPath::MmapTouch, now)?;
        } else {
            match self.heap.alloc_small(size) {
                SmallAlloc::Recycled { pages } => {
                    lat = self.costs.book_warm.mul_f64(self.noise());
                    // Recycled pages may have been swapped out meanwhile.
                    lat += os.touch_resident(self.proc, pages, now);
                }
                SmallAlloc::Fresh {
                    new_pages,
                    grew_break,
                } => {
                    lat = self.costs.book_small.mul_f64(self.noise());
                    if grew_break {
                        lat += os.syscall_cost();
                    }
                    if new_pages > 0 {
                        lat += os.alloc_anon(self.proc, new_pages, FaultPath::HeapTouch, now)?;
                    }
                }
            }
        }
        let h = AllocHandle(self.next_handle);
        self.next_handle += 1;
        self.live.insert(h.0, Live { size, mmapped });
        Ok((h, lat))
    }

    fn free(&mut self, handle: AllocHandle, now: SimTime, os: &mut Os) -> SimDuration {
        self.advance_to(now, os);
        let Some(l) = self.live.remove(&handle.0) else {
            return SimDuration::ZERO;
        };
        if l.mmapped {
            // Glibc releases mmapped chunks straight back to the OS.
            os.release_anon(self.proc, pages_for(l.size), false);
            os.syscall_cost() + SimDuration::from_nanos(400)
        } else {
            self.heap.free_small(l.size);
            SimDuration::from_nanos(250)
        }
    }

    fn access(
        &mut self,
        handle: AllocHandle,
        bytes: usize,
        now: SimTime,
        os: &mut Os,
    ) -> SimDuration {
        self.advance_to(now, os);
        if self.live.contains_key(&handle.0) {
            os.touch_resident(self.proc, pages_for(bytes), now)
        } else {
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_os::config::OsConfig;

    fn setup() -> (Os, GlibcSim) {
        let mut os = Os::new(OsConfig::small_test_node());
        let a = GlibcSim::new(&mut os, 1);
        (os, a)
    }

    #[test]
    fn small_allocations_cost_microseconds() {
        let (mut os, mut a) = setup();
        let mut total = SimDuration::ZERO;
        let mut now = SimTime::ZERO;
        for _ in 0..1000 {
            let (_, lat) = a.malloc(1024, now, &mut os).unwrap();
            total += lat;
            now += lat;
        }
        let avg_ns = total.as_nanos() / 1000;
        assert!(
            (1_000..12_000).contains(&avg_ns),
            "avg small latency {avg_ns}ns"
        );
    }

    #[test]
    fn large_allocations_cost_near_millisecond() {
        let (mut os, mut a) = setup();
        let (_, lat) = a.malloc(256 * 1024, SimTime::ZERO, &mut os).unwrap();
        let us = lat.as_micros();
        assert!((300..4_000).contains(&us), "large latency {us}us");
    }

    #[test]
    fn mmap_free_returns_pages() {
        let (mut os, mut a) = setup();
        let before = os.free_pages();
        let (h, _) = a.malloc(512 * 1024, SimTime::ZERO, &mut os).unwrap();
        assert!(os.free_pages() < before);
        a.free(h, SimTime::from_micros(10), &mut os);
        assert_eq!(os.free_pages(), before);
    }

    #[test]
    fn heap_free_keeps_pages_resident() {
        let (mut os, mut a) = setup();
        let (h, _) = a.malloc(1024, SimTime::ZERO, &mut os).unwrap();
        let before = os.free_pages();
        a.free(h, SimTime::from_micros(10), &mut os);
        assert_eq!(os.free_pages(), before, "binned chunks stay resident");
    }

    #[test]
    fn recycled_chunks_are_cheaper_on_average() {
        let (mut os, mut a) = setup();
        let mut now = SimTime::ZERO;
        let mut fresh = SimDuration::ZERO;
        let mut warm = SimDuration::ZERO;
        const N: u64 = 500;
        for _ in 0..N {
            let (h, lat) = a.malloc(4096, now, &mut os).unwrap();
            fresh += lat;
            now += lat;
            a.free(h, now, &mut os);
        }
        for _ in 0..N {
            let (h, lat) = a.malloc(4096, now, &mut os).unwrap();
            warm += lat;
            now += lat;
            a.free(h, now, &mut os);
        }
        // The second wave is fully recycled after the first free.
        assert!(warm < fresh, "warm {warm} vs fresh {fresh}");
    }

    #[test]
    fn double_free_is_harmless() {
        let (mut os, mut a) = setup();
        let (h, _) = a.malloc(1024, SimTime::ZERO, &mut os).unwrap();
        a.free(h, SimTime::from_micros(1), &mut os);
        let lat = a.free(h, SimTime::from_micros(2), &mut os);
        assert_eq!(lat, SimDuration::ZERO);
    }
}
