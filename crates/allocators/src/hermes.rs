//! The Hermes allocator model: the Glibc heap geometry plus the paper's
//! management thread, executing the *same* policy code
//! (`hermes_core::policy`) as the real allocator.
//!
//! Faithfulness notes:
//!
//! * The management thread wakes every `f` = 2 ms; its reservation work is
//!   budgeted — steps that would run past the next wake-up are dropped and
//!   re-planned, so a demand burst can outrun reservation (this is what
//!   keeps large-request gains modest on a dedicated system, Fig. 8d).
//! * Heap reservation steps hold the heap lock one `MEM_CHUNK` at a time
//!   (gradual reservation); a `malloc` arriving inside a lock window waits
//!   for that step only (Figure 6b).
//! * Mappings are constructed via `mlock` (§4) and `munlock`ed on
//!   hand-off, so handed-out pages become evictable again.
//! * The mmap side is asynchronous: pool refills never block requesters;
//!   over-sized hand-outs shrink on the next round (`alloc_set`).

use crate::costs::{GlibcCosts, HermesCosts};
use crate::heap_model::{HeapModel, SmallAlloc};
use crate::traits::{AllocHandle, AllocatorKind, SimAllocator};
use hermes_core::policy::{
    DelayedShrinkSet, MmapChunk, PoolHit, ReservationPlan, SegregatedFreeList, ThresholdTracker,
};
use hermes_core::HermesConfig;
use hermes_os::config::PAGE_SIZE;
use hermes_os::prelude::*;
use hermes_sim::rng::DetRng;
use hermes_sim::time::{SimDuration, SimTime};
use std::collections::{HashMap, HashSet, VecDeque};

#[derive(Debug, Clone, Copy)]
struct Live {
    /// Requested bytes.
    size: usize,
    /// For large allocations: backing chunk id and its current size.
    chunk: Option<(u64, usize)>,
}

/// Simulated Hermes allocator bound to one latency-critical process.
#[derive(Debug)]
pub struct HermesSim {
    proc: ProcId,
    cfg: HermesConfig,
    costs: HermesCosts,
    glibc_costs: GlibcCosts,
    heap: HeapModel,
    small_tracker: ThresholdTracker,
    large_tracker: ThresholdTracker,
    pool: SegregatedFreeList,
    /// Chunks in the pool that are still mlocked (fresh reservations).
    locked_chunks: HashSet<u64>,
    shrink: DelayedShrinkSet,
    /// chunk id -> live handle, for shrink bookkeeping.
    chunk_owner: HashMap<u64, u64>,
    live: HashMap<u64, Live>,
    next_handle: u64,
    next_chunk: u64,
    next_wakeup: SimTime,
    lock_windows: VecDeque<(SimTime, SimTime)>,
    mgmt_busy: SimDuration,
    reserve_consumed: usize,
    rng: DetRng,
}

impl HermesSim {
    /// Creates the model for a new latency-critical process.
    pub fn new(os: &mut Os, seed: u64, cfg: HermesConfig) -> Self {
        let proc = os.register_process(ProcKind::LatencyCritical);
        let small_tracker = ThresholdTracker::new(
            cfg.rsv_factor,
            cfg.min_rsv,
            cfg.rsv_trigger_ratio,
            cfg.trim_ratio,
            PAGE_SIZE,
            1 << 20,
        );
        let large_tracker = ThresholdTracker::new(
            cfg.rsv_factor,
            cfg.min_rsv,
            cfg.rsv_trigger_ratio,
            cfg.trim_ratio,
            cfg.mmap_threshold,
            8 << 20,
        );
        let pool = SegregatedFreeList::new(cfg.mmap_threshold, cfg.table_size);
        let interval = SimDuration::from_nanos(cfg.interval.as_nanos() as u64);
        HermesSim {
            proc,
            costs: HermesCosts::default(),
            glibc_costs: GlibcCosts::default(),
            heap: HeapModel::new(),
            small_tracker,
            large_tracker,
            pool,
            locked_chunks: HashSet::new(),
            shrink: DelayedShrinkSet::new(),
            chunk_owner: HashMap::new(),
            live: HashMap::new(),
            next_handle: 1,
            next_chunk: 1,
            next_wakeup: SimTime::ZERO + interval,
            lock_windows: VecDeque::new(),
            mgmt_busy: SimDuration::ZERO,
            reserve_consumed: 0,
            rng: DetRng::new(seed, "hermes"),
            cfg,
        }
    }

    fn interval(&self) -> SimDuration {
        SimDuration::from_nanos(self.cfg.interval.as_nanos() as u64)
    }

    fn noise(&mut self) -> f64 {
        self.rng.tail_multiplier(self.costs.sigma)
    }

    /// Remaining wait if `now` falls inside a management lock window.
    fn lock_wait(&mut self, now: SimTime) -> SimDuration {
        while let Some(&(_, end)) = self.lock_windows.front() {
            if end + SimDuration::from_millis(50) < now {
                self.lock_windows.pop_front();
            } else {
                break;
            }
        }
        for &(start, end) in &self.lock_windows {
            if start <= now && now < end {
                return end.duration_since(now);
            }
        }
        SimDuration::ZERO
    }

    /// One management round at wake-up instant `w` (Algorithms 1 and 2).
    fn run_round(&mut self, w: SimTime, os: &mut Os) {
        let deadline = w + self.interval();
        let mut cursor = w;

        // ---- Heap side (Algorithm 1) ----
        let th = self.small_tracker.roll_interval();
        let ready = self.heap.reserve_ready();
        if ready < th.rsv_thr {
            let deficit = th.tgt_mem - ready;
            let plan = if self.cfg.gradual_reservation {
                ReservationPlan::new(deficit, th.mem_chunk)
            } else {
                ReservationPlan::bulk(deficit)
            };
            for step in plan {
                if cursor >= deadline {
                    break; // budget exhausted; re-plan next round
                }
                let pages = self.heap.reserve(step);
                if pages > 0 {
                    match os.alloc_anon(self.proc, pages, FaultPath::HeapMlock, cursor) {
                        Ok(lat) => {
                            let lat = lat + os.syscall_cost();
                            self.lock_windows.push_back((cursor, cursor + lat));
                            cursor += lat;
                        }
                        Err(_) => break, // cannot reserve under OOM; serve on demand
                    }
                }
            }
        } else if self.heap.reserve_ready() > th.trim_thr {
            let released = self.heap.trim(th.tgt_mem);
            if released > 0 {
                os.release_anon(self.proc, released, true);
                let lat = os.syscall_cost();
                self.lock_windows.push_back((cursor, cursor + lat));
                cursor += lat;
            }
        }

        // ---- Mmap side (Algorithm 2): asynchronous, no lock windows ----
        let th = self.large_tracker.roll_interval();
        // DelayRelease(alloc_set): shrink over-sized hand-outs.
        for e in self.shrink.drain() {
            let tail_pages = (e.allocated - e.requested) as u64 / PAGE_SIZE as u64;
            if tail_pages > 0 {
                os.release_anon(self.proc, tail_pages, false);
                cursor += os.syscall_cost();
            }
            if let Some(&handle) = self.chunk_owner.get(&e.id) {
                if let Some(l) = self.live.get_mut(&handle) {
                    if let Some((_, ref mut sz)) = l.chunk {
                        *sz = e.requested;
                    }
                }
            }
        }
        if self.pool.total_size() < th.rsv_thr {
            while self.pool.total_size() < th.tgt_mem && cursor < deadline {
                let bytes = th.mem_chunk.max(self.cfg.mmap_threshold);
                match os.alloc_anon(self.proc, pages_for(bytes), FaultPath::MmapMlock, cursor) {
                    Ok(lat) => {
                        let id = self.next_chunk;
                        self.next_chunk += 1;
                        self.pool.insert(MmapChunk { id, size: bytes });
                        self.locked_chunks.insert(id);
                        cursor += lat + os.syscall_cost();
                    }
                    Err(_) => break,
                }
            }
        }
        while self.pool.total_size() > th.trim_thr {
            match self.pool.take_smallest() {
                Some(c) => {
                    let locked = self.locked_chunks.remove(&c.id);
                    os.release_anon(self.proc, pages_for(c.size), locked);
                    cursor += os.syscall_cost();
                }
                None => break,
            }
        }

        self.mgmt_busy += cursor.duration_since(w);
        self.next_wakeup = (w + self.interval()).max(cursor);
    }

    fn malloc_small(
        &mut self,
        size: usize,
        now: SimTime,
        os: &mut Os,
    ) -> Result<SimDuration, MemError> {
        self.small_tracker.on_request(size);
        match self.heap.alloc_small(size) {
            SmallAlloc::Recycled { pages } => {
                let lat = SimDuration::from_nanos(
                    (self.glibc_costs.book_warm.as_nanos() as f64 * self.noise()) as u64,
                );
                Ok(lat + os.touch_resident(self.proc, pages, now))
            }
            SmallAlloc::Fresh {
                new_pages,
                grew_break,
            } => {
                if new_pages == 0 {
                    // Served from the advance reservation: the fast path.
                    let mut lat = self.costs.book_fast.mul_f64(self.noise());
                    lat += self.lock_wait(now);
                    // munlock the consumed pages on hand-off (§4).
                    self.reserve_consumed += size;
                    let unlock = (self.reserve_consumed / PAGE_SIZE) as u64;
                    if unlock > 0 {
                        os.munlock(self.proc, unlock);
                        self.reserve_consumed %= PAGE_SIZE;
                        lat += self.costs.munlock;
                    }
                    Ok(lat)
                } else {
                    // Reserve exhausted: if the management thread is
                    // mid-step, wait on it (Figure 5), else default route.
                    let wait = self.lock_wait(now);
                    let mut lat = self.glibc_costs.book_small.mul_f64(self.noise()) + wait;
                    if grew_break {
                        lat += os.syscall_cost();
                    }
                    lat += os.alloc_anon(self.proc, new_pages, FaultPath::HeapTouch, now)?;
                    Ok(lat)
                }
            }
        }
    }

    fn malloc_large(
        &mut self,
        size: usize,
        now: SimTime,
        os: &mut Os,
    ) -> Result<(SimDuration, (u64, usize)), MemError> {
        self.large_tracker.on_request(size);
        let need = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        match self.pool.take(need) {
            PoolHit::Fit(c) => {
                // Writes to pre-faulted pages dodge most of the reclaim
                // bus contention (no page-table work mid-copy).
                let c_w = 1.0 + (os.write_contention() - 1.0) * 0.15;
                let n = self.rng.tail_multiplier(self.costs.sigma_large);
                let mut lat = self.costs.book_pool.mul_f64(n * c_w);
                if self.locked_chunks.remove(&c.id) {
                    os.munlock(self.proc, pages_for(c.size));
                    lat += self.costs.munlock;
                } else {
                    lat += os.touch_resident(self.proc, pages_for(c.size), now);
                }
                if c.size > need {
                    if self.cfg.delayed_shrink {
                        self.shrink.push(c.id, c.size, need);
                        Ok((lat, (c.id, c.size)))
                    } else {
                        // Ablation: synchronous shrink on the hot path.
                        let tail = (c.size - need) as u64 / PAGE_SIZE as u64;
                        os.release_anon(self.proc, tail, false);
                        lat += os.syscall_cost() * 2;
                        Ok((lat, (c.id, need)))
                    }
                } else {
                    Ok((lat, (c.id, c.size)))
                }
            }
            PoolHit::Expand { chunk, extra } => {
                // Expand the largest chunk in place (mremap): only the
                // extra pages need mapping construction.
                let c_w = 1.0 + (os.write_contention() - 1.0) * 0.3;
                let n = self.rng.tail_multiplier(self.costs.sigma_large);
                let mut lat = self.costs.book_pool.mul_f64(n * c_w) + os.syscall_cost();
                if self.locked_chunks.remove(&chunk.id) {
                    os.munlock(self.proc, pages_for(chunk.size));
                    lat += self.costs.munlock;
                }
                lat += os.alloc_anon(self.proc, pages_for(extra), FaultPath::MmapTouch, now)?;
                Ok((lat, (chunk.id, need)))
            }
            PoolHit::Miss => {
                // Empty pool: the default mmap allocation routine.
                let n = self.rng.tail_multiplier(self.glibc_costs.sigma_large);
                let mut lat = self
                    .glibc_costs
                    .book_large
                    .mul_f64(n * os.write_contention())
                    + os.syscall_cost();
                lat += os.alloc_anon(self.proc, pages_for(need), FaultPath::MmapTouch, now)?;
                let id = self.next_chunk;
                self.next_chunk += 1;
                Ok((lat, (id, need)))
            }
        }
    }
}

impl SimAllocator for HermesSim {
    fn kind(&self) -> AllocatorKind {
        AllocatorKind::Hermes
    }

    fn proc_id(&self) -> ProcId {
        self.proc
    }

    fn advance_to(&mut self, now: SimTime, os: &mut Os) {
        os.advance_to(now);
        while self.next_wakeup <= now {
            let w = self.next_wakeup;
            self.run_round(w, os);
        }
    }

    fn malloc(
        &mut self,
        size: usize,
        now: SimTime,
        os: &mut Os,
    ) -> Result<(AllocHandle, SimDuration), MemError> {
        self.advance_to(now, os);
        let (lat, chunk) = if size >= self.cfg.mmap_threshold {
            let (lat, chunk) = self.malloc_large(size, now, os)?;
            (lat, Some(chunk))
        } else {
            (self.malloc_small(size, now, os)?, None)
        };
        let h = AllocHandle(self.next_handle);
        self.next_handle += 1;
        if let Some((id, _)) = chunk {
            self.chunk_owner.insert(id, h.0);
        }
        self.live.insert(h.0, Live { size, chunk });
        Ok((h, lat))
    }

    fn free(&mut self, handle: AllocHandle, now: SimTime, os: &mut Os) -> SimDuration {
        self.advance_to(now, os);
        let Some(l) = self.live.remove(&handle.0) else {
            return SimDuration::ZERO;
        };
        match l.chunk {
            Some((id, chunk_size)) => {
                // Freed large chunks rejoin the segregated pool (still
                // resident, evictable).
                self.shrink.cancel(id);
                self.chunk_owner.remove(&id);
                self.pool.insert(MmapChunk {
                    id,
                    size: chunk_size,
                });
                SimDuration::from_nanos(600)
            }
            None => {
                self.heap.free_small(l.size);
                SimDuration::from_nanos(250)
            }
        }
    }

    fn access(
        &mut self,
        handle: AllocHandle,
        bytes: usize,
        now: SimTime,
        os: &mut Os,
    ) -> SimDuration {
        self.advance_to(now, os);
        if self.live.contains_key(&handle.0) {
            os.touch_resident(self.proc, pages_for(bytes), now)
        } else {
            SimDuration::ZERO
        }
    }

    fn reserved_unused(&self) -> usize {
        self.heap.reserve_ready() + self.pool.total_size()
    }

    fn management_busy(&self) -> SimDuration {
        self.mgmt_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_os::config::OsConfig;

    fn setup() -> (Os, HermesSim) {
        let mut os = Os::new(OsConfig::small_test_node());
        let a = HermesSim::new(&mut os, 4, HermesConfig::default());
        (os, a)
    }

    fn warmup(a: &mut HermesSim, os: &mut Os, size: usize, n: usize) -> SimTime {
        let mut now = SimTime::ZERO;
        for _ in 0..n {
            let (_, lat) = a.malloc(size, now, os).unwrap();
            now += lat + SimDuration::from_nanos(300);
        }
        now
    }

    #[test]
    fn reservation_builds_after_first_intervals() {
        let (mut os, mut a) = setup();
        let now = warmup(&mut a, &mut os, 1024, 200);
        a.advance_to(now + SimDuration::from_millis(10), &mut os);
        assert!(
            a.reserved_unused() >= a.cfg.min_rsv / 2,
            "reserve {} bytes",
            a.reserved_unused()
        );
        assert!(a.management_busy() > SimDuration::ZERO);
    }

    #[test]
    fn small_fast_path_beats_glibc_average() {
        let (mut os, mut a) = setup();
        // Warm up so the reserve exists, then measure.
        let mut now = warmup(&mut a, &mut os, 1024, 2000);
        let mut hermes_total = SimDuration::ZERO;
        for _ in 0..500 {
            let (_, lat) = a.malloc(1024, now, &mut os).unwrap();
            hermes_total += lat;
            now += lat + SimDuration::from_nanos(300);
        }
        let mut os2 = Os::new(OsConfig::small_test_node());
        let mut g = crate::glibc::GlibcSim::new(&mut os2, 4);
        let mut now2 = SimTime::ZERO;
        let mut glibc_total = SimDuration::ZERO;
        for _ in 0..500 {
            let (_, lat) = g.malloc(1024, now2, &mut os2).unwrap();
            glibc_total += lat;
            now2 += lat + SimDuration::from_nanos(300);
        }
        assert!(
            hermes_total < glibc_total,
            "hermes {hermes_total} vs glibc {glibc_total}"
        );
    }

    #[test]
    fn locked_reserve_is_unlocked_on_handoff() {
        let (mut os, mut a) = setup();
        let now = warmup(&mut a, &mut os, 1024, 100);
        a.advance_to(now + SimDuration::from_millis(20), &mut os);
        let locked_before = os.process(a.proc_id()).unwrap().locked;
        assert!(locked_before > 0, "reserve is mlocked");
        // Consume a lot of reserve.
        let mut t = now + SimDuration::from_millis(20);
        for _ in 0..2000 {
            let (_, lat) = a.malloc(1024, t, &mut os).unwrap();
            t += lat + SimDuration::from_nanos(200);
        }
        let st = os.process(a.proc_id()).unwrap();
        assert!(st.anon_resident > 0, "handed-out pages are evictable");
    }

    #[test]
    fn large_requests_hit_pool_after_warmup() {
        let (mut os, mut a) = setup();
        let mut now = SimTime::ZERO;
        let mut lats = Vec::new();
        for _ in 0..60 {
            let (_, lat) = a.malloc(256 * 1024, now, &mut os).unwrap();
            lats.push(lat);
            now += lat + SimDuration::from_micros(50);
        }
        // Pool reservations kick in after the first intervals; later
        // requests should include pool hits, which skip the mapping
        // construction (~900 us) but keep the per-request overhead.
        let early: SimDuration = lats[..10].iter().copied().sum();
        let late: SimDuration = lats[lats.len() - 10..].iter().copied().sum();
        assert!(late < early, "late {late} vs early {early}");
        let fast = lats.iter().filter(|l| l.as_micros() < 900).count();
        assert!(fast > 5, "pool hits: {fast}");
    }

    #[test]
    fn freed_large_chunk_is_reused_warm() {
        let (mut os, mut a) = setup();
        let (h, first) = a.malloc(300 * 1024, SimTime::ZERO, &mut os).unwrap();
        a.free(h, SimTime::from_micros(1), &mut os);
        let (_, second) = a
            .malloc(300 * 1024, SimTime::from_micros(2), &mut os)
            .unwrap();
        // The reused chunk skips mapping construction.
        assert!(second < first, "warm {second} vs cold {first}");
    }

    #[test]
    fn oversized_pool_chunk_is_shrunk_next_round() {
        let (mut os, mut a) = setup();
        // Build a pool with larger chunks than the next request.
        let mut now = warmup(&mut a, &mut os, 512 * 1024, 20);
        now += SimDuration::from_millis(10);
        a.advance_to(now, &mut os);
        let (_, _lat) = a.malloc(200 * 1024, now, &mut os).unwrap();
        if !a.shrink.is_empty() {
            let pending = a.shrink.len();
            a.advance_to(now + SimDuration::from_millis(5), &mut os);
            assert_eq!(a.shrink.len(), 0, "{pending} shrink entries processed");
        }
    }

    #[test]
    fn reserved_unused_stays_bounded() {
        let (mut os, mut a) = setup();
        let now = warmup(&mut a, &mut os, 1024, 2000);
        a.advance_to(now + SimDuration::from_millis(50), &mut os);
        // §5.5: reserved-but-unused memory is a few MB, not unbounded.
        assert!(
            a.reserved_unused() < 64 << 20,
            "reserved {} stays bounded",
            a.reserved_unused()
        );
    }

    #[test]
    fn idle_period_then_burst_served_from_min_rsv() {
        let (mut os, mut a) = setup();
        // Idle for 100 ms: rounds run, min_rsv reserve builds.
        a.advance_to(SimTime::from_millis(100), &mut os);
        assert!(a.reserved_unused() >= a.cfg.min_rsv / 2);
        // A burst right after idle mostly avoids demand faults.
        let mut now = SimTime::from_millis(100);
        let mut slow = 0;
        for _ in 0..500 {
            let (_, lat) = a.malloc(1024, now, &mut os).unwrap();
            if lat > SimDuration::from_micros(8) {
                slow += 1;
            }
            now += lat;
        }
        assert!(slow < 50, "burst after idle: {slow}/500 slow");
    }
}
