//! Growth stress: the real Hermes runtime pushed past its boot-time
//! capacity, proving the mapped platform layer end to end — on-demand
//! `Arena::grow` on the allocation path, then manager-driven
//! `madvise(DONTNEED)` decommit once the burst is freed.
//!
//! The former global allocator was hard-capped at a 256 MiB heap; this
//! suite allocates past that from a far smaller initial exposure.

use hermes_allocators::{AllocatorBackend, RealHermesBackend};
use hermes_core::platform::platform;
use hermes_core::rt::HermesHeapConfig;
use hermes_core::HermesConfig;

/// 1 MiB chunks: the large (mmap-path) side, where the burst lands.
const CHUNK: usize = 1 << 20;

fn growing_backend() -> RealHermesBackend {
    // 32 MiB + 64 MiB exposed, 8x reserved: the 288 MiB burst below can
    // only be served by growing into the reservation.
    RealHermesBackend::with_heap_config(HermesHeapConfig {
        heap_capacity: 32 << 20,
        large_capacity: 64 << 20,
        arenas: 4,
        reserve_factor: 8,
        hermes: HermesConfig::default(),
    })
    .expect("arena reservation")
}

#[test]
fn burst_past_the_former_ceiling_then_decommit() {
    let mut b = growing_backend();
    let start = b.stats();
    assert!(
        start.backing_reserved_bytes > (512 << 20),
        "8x factor reserves well past the burst: {} B",
        start.backing_reserved_bytes
    );

    // Allocate 288 MiB live — past the former 256 MiB global ceiling
    // and 3x this heap's total initial exposure.
    let mut held = Vec::new();
    for _ in 0..288 {
        let (h, _) = b.malloc(CHUNK).expect("growth serves the burst");
        held.push(h);
    }
    let peak = b.stats();
    assert_eq!(peak.live_bytes, 288 * CHUNK);
    assert!(
        peak.committed_bytes >= 288 * CHUNK,
        "the burst is mapping-constructed: {} B committed",
        peak.committed_bytes
    );
    assert!(
        peak.committed_bytes <= peak.backing_reserved_bytes,
        "commit stays within the reservation"
    );

    // Release the burst and run the manager until delayed shrink hands
    // pages back to the kernel.
    for h in held {
        b.free(h);
    }
    assert_eq!(b.stats().live, 0);
    let mut decommitted = 0;
    for _ in 0..256 {
        b.heap().run_management_round();
        decommitted = b.stats().decommitted_bytes;
        if decommitted > 0 {
            break;
        }
    }
    if platform().supports_mapping() {
        assert!(
            decommitted > 0,
            "manager rounds decommit the freed burst on mmap hosts"
        );
        let after = b.stats();
        assert!(
            after.committed_bytes < after.backing_reserved_bytes,
            "committed {} < reserved {} after decommit",
            after.committed_bytes,
            after.backing_reserved_bytes
        );
        assert!(
            after.committed_bytes < peak.committed_bytes,
            "decommit shrank the committed gauge: {} -> {}",
            peak.committed_bytes,
            after.committed_bytes
        );
    }
    b.check().expect("integrity after burst and decommit");
}

#[test]
fn decommitted_memory_is_reusable() {
    let mut b = growing_backend();
    // Burst, free, decommit…
    let held: Vec<_> = (0..64).map(|_| b.malloc(CHUNK).unwrap().0).collect();
    for h in held {
        b.free(h);
    }
    for _ in 0..256 {
        b.heap().run_management_round();
        if b.stats().decommitted_bytes > 0 {
            break;
        }
    }
    // …then the same range must serve (and survive writes) again.
    let held: Vec<_> = (0..64)
        .map(|_| b.malloc(CHUNK).expect("reuse after decommit").0)
        .collect();
    for h in held {
        let _ = b.access(h, CHUNK);
        b.free(h);
    }
    assert_eq!(b.stats().live, 0);
    b.check().expect("integrity after decommit-then-reuse");
}
