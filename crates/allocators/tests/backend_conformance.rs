//! Backend conformance: one shared suite instantiated against every
//! `AllocatorBackend` implementation — the four sim adapters and both
//! real wall-clock backends. Any new backend gets the same contract
//! checks for free by joining `all_backends`.

use hermes_allocators::{
    AllocError, AllocatorBackend, AllocatorKind, BackendKind, FaultBackend, FaultConfig,
    RealHermesBackend, RealSystemBackend, SimBackend, SimEnv,
};
use hermes_core::rt::HermesHeapConfig;
use hermes_core::HermesConfig;
use hermes_os::config::OsConfig;
use hermes_sim::time::SimDuration;

/// Builds one instance of every backend implementation. Each sim
/// adapter gets its own environment; the `SimEnv` handles are kept
/// alive inside the backend via `Arc`, so dropping the locals is fine.
fn all_backends() -> Vec<Box<dyn AllocatorBackend>> {
    let cfg = HermesConfig::default();
    let mut out: Vec<Box<dyn AllocatorBackend>> = Vec::new();
    for kind in AllocatorKind::ALL {
        let env = SimEnv::new(OsConfig::small_test_node());
        out.push(Box::new(SimBackend::new(kind, &env, 11, &cfg)));
    }
    out.push(Box::new(
        RealHermesBackend::with_heap_config(HermesHeapConfig::small()).expect("arena reservation"),
    ));
    // The same contract over a *growing* mapped heap: small initial
    // exposure, 4x address-space reservation, extended on demand by
    // `Arena::grow` as the suite allocates.
    out.push(Box::new(
        RealHermesBackend::with_heap_config(HermesHeapConfig::small().with_reserve_factor(4))
            .expect("arena reservation"),
    ));
    out.push(Box::new(RealSystemBackend::new()));
    out
}

#[test]
fn malloc_free_round_trips() {
    for mut b in all_backends() {
        let label = b.kind().label();
        for size in [1usize, 64, 1024, 64 * 1024, 200 * 1024] {
            let (h, lat) = b
                .malloc(size)
                .unwrap_or_else(|e| panic!("{label}: malloc({size}) failed: {e}"));
            assert!(
                lat > SimDuration::ZERO,
                "{label}: malloc({size}) reports a positive latency"
            );
            let _ = b.access(h, size);
            b.free(h);
        }
        let s = b.stats();
        assert_eq!(s.live, 0, "{label}: everything freed");
        assert_eq!(s.live_bytes, 0, "{label}: no bytes held");
        assert_eq!(s.alloc_count, 5, "{label}");
        assert_eq!(s.free_count, 5, "{label}");
        b.check().unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn realloc_round_trips_and_counts() {
    for mut b in all_backends() {
        let label = b.kind().label();
        let (h, _) = b.malloc(100).unwrap();
        let (h, _) = b
            .realloc(h, 10_000)
            .unwrap_or_else(|e| panic!("{label}: grow failed: {e}"));
        let (h, _) = b
            .realloc(h, 50)
            .unwrap_or_else(|e| panic!("{label}: shrink failed: {e}"));
        b.free(h);
        let s = b.stats();
        assert_eq!(s.live, 0, "{label}: realloc chain fully retired");
        assert_eq!(s.realloc_count, 2, "{label}");
        assert_eq!(s.alloc_count, s.free_count, "{label}: allocs balance frees");
    }
}

#[test]
fn stats_counters_are_monotone() {
    for mut b in all_backends() {
        let label = b.kind().label();
        let mut prev = b.stats();
        let mut live = Vec::new();
        for i in 0..32usize {
            if i % 3 == 2 {
                if let Some(h) = live.pop() {
                    b.free(h);
                }
            } else {
                live.push(b.malloc(512 + i * 64).unwrap().0);
            }
            b.advance();
            let s = b.stats();
            assert!(s.alloc_count >= prev.alloc_count, "{label}: alloc_count");
            assert!(s.free_count >= prev.free_count, "{label}: free_count");
            assert!(
                s.realloc_count >= prev.realloc_count,
                "{label}: realloc_count"
            );
            assert_eq!(
                s.live as usize,
                live.len(),
                "{label}: live gauge tracks handles"
            );
            prev = s;
        }
        for h in live {
            b.free(h);
        }
    }
}

#[test]
fn cross_thread_free_lands_on_the_owner() {
    // Allocate on this thread, move the backend (handles are plain
    // ids), free on another: the free must route back to whatever owns
    // the memory — Hermes' shard range table, the sims' OS model — and
    // leave the stats balanced.
    for mut b in all_backends() {
        let label = b.kind().label();
        let (h, _) = b.malloc(2048).unwrap();
        let b = std::thread::spawn(move || {
            b.free(h);
            b
        })
        .join()
        .unwrap_or_else(|_| panic!("{label}: freeing thread panicked"));
        let s = b.stats();
        assert_eq!(s.live, 0, "{label}");
        assert_eq!(s.free_count, 1, "{label}");
        b.check().unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn cross_thread_free_under_remote_queue_stays_lock_free() {
    // The remote-free inbox contract over both real Hermes shapes
    // (fixed backing and grow-on-demand): frees from a thread whose
    // home shard differs from the owner must stage into the lock-free
    // inboxes — zero lock fallbacks — and the queued bytes must be
    // visible through the uniform `BackendStats` façade until a drain
    // returns them to the heaps.
    for base in [
        HermesHeapConfig::small(),
        HermesHeapConfig::small().with_reserve_factor(4),
    ] {
        let mut cfg = base.with_arena_count(4);
        cfg.hermes = HermesConfig::default()
            .with_tcache(true)
            .with_remote_queue(true);
        let mut b = RealHermesBackend::with_heap_config(cfg).expect("arena reservation");
        let label = b.kind().label();
        let main_home = b.heap().home_arena();
        let handles: Vec<_> = (0..48).map(|i| b.malloc(512 + i * 32).unwrap().0).collect();
        // Free on a thread with a *different* home shard (tickets are
        // handed out round-robin, but parallel tests also consume them,
        // so probe until a spawned thread lands elsewhere).
        let mut state = Some((b, Some(handles)));
        for _ in 0..16 {
            let (bb, hs) = state.take().expect("backend in flight");
            state = Some(
                std::thread::spawn(move || {
                    let mut bb = bb;
                    match hs {
                        // Wrong parity: hand everything back untouched.
                        Some(hs) if bb.heap().home_arena() == main_home => (bb, Some(hs)),
                        Some(hs) => {
                            for h in hs {
                                bb.free(h);
                            }
                            (bb, None)
                        }
                        None => (bb, None),
                    }
                })
                .join()
                .unwrap_or_else(|_| panic!("{label}: freeing thread panicked")),
            );
            if state.as_ref().is_some_and(|(_, hs)| hs.is_none()) {
                break;
            }
        }
        let (b, leftovers) = state.expect("backend returned");
        assert!(
            leftovers.is_none(),
            "{label}: no foreign-home thread found in 16 tries"
        );
        let c = b.heap().counters();
        assert!(c.remote_frees > 0, "{label}: frees staged remotely");
        assert_eq!(
            c.remote_lock_falls, 0,
            "{label}: no remote free took the owner's lock"
        );
        let s = b.stats();
        assert_eq!(s.live, 0, "{label}: all handles retired");
        assert!(
            s.remote_queued > 0,
            "{label}: queued bytes visible before the drain"
        );
        b.heap().drain_remote_inboxes();
        assert_eq!(b.stats().remote_queued, 0, "{label}: drain emptied inboxes");
        b.check().unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn free_of_unknown_handle_is_a_safe_noop_for_real_backends() {
    for kind in [BackendKind::RealHermes, BackendKind::RealSystem] {
        let mut b: Box<dyn AllocatorBackend> = match kind {
            BackendKind::RealHermes => {
                Box::new(RealHermesBackend::with_heap_config(HermesHeapConfig::small()).unwrap())
            }
            _ => Box::new(RealSystemBackend::new()),
        };
        let bogus = hermes_allocators::AllocHandle(12345);
        assert_eq!(b.free(bogus), SimDuration::ZERO, "{kind}");
        assert_eq!(b.stats().free_count, 0, "{kind}: nothing was freed");
    }
}

#[test]
fn oversized_requests_fail_typed_on_real_backends() {
    let mut hermes = RealHermesBackend::with_heap_config(HermesHeapConfig::small()).unwrap();
    match hermes.malloc(1 << 40) {
        Err(AllocError::Oversized { requested, .. }) => assert_eq!(requested, 1 << 40),
        other => panic!("real:hermes expected Oversized, got {other:?}"),
    }
    let mut system = RealSystemBackend::new();
    match system.malloc(isize::MAX as usize) {
        Err(AllocError::Oversized { .. }) => {}
        other => panic!("real:system expected Oversized, got {other:?}"),
    }
}

#[test]
fn exhaust_then_recover_under_a_byte_budget() {
    // Alloc-until-`Exhausted`, free, alloc again — over every backend,
    // made finite by a fault-wrapper byte budget so the real system
    // allocator participates too. The failure must be typed, leak
    // nothing, and clear once memory is returned.
    const CHUNK: usize = 1 << 20;
    for inner in all_backends() {
        let label = inner.kind().label();
        let mut b = FaultBackend::new(inner, FaultConfig::new(17).with_budget(4 * CHUNK));
        let mut held = Vec::new();
        let denial = loop {
            match b.malloc(CHUNK) {
                Ok((h, _)) => held.push(h),
                Err(e) => break e,
            }
            assert!(held.len() <= 5, "{label}: budget must bite within 5 chunks");
        };
        assert!(
            matches!(denial, AllocError::Exhausted),
            "{label}: expected Exhausted, got {denial:?}"
        );
        assert_eq!(held.len(), 4, "{label}: exactly the budget was served");
        assert_eq!(b.stats().live as usize, held.len(), "{label}: no leak");
        // Recovery: freeing makes the same request succeed again.
        b.free(held.pop().expect("held chunks"));
        let (h, _) = b
            .malloc(CHUNK)
            .unwrap_or_else(|e| panic!("{label}: post-free malloc failed: {e}"));
        held.push(h);
        for h in held.drain(..) {
            b.free(h);
        }
        assert_eq!(b.stats().live, 0, "{label}: fully recovered");
        assert_eq!(b.budget_live_bytes(), 0, "{label}: budget accounting");
        b.check()
            .unwrap_or_else(|e| panic!("{label}: integrity after exhaustion: {e}"));
    }
}

#[test]
fn real_hermes_exhausts_natively_and_recovers() {
    // No wrapper: the small heap config really runs out. The cap on the
    // loop guards against an unbounded heap masking a missing error.
    let mut b = RealHermesBackend::with_heap_config(HermesHeapConfig::small()).unwrap();
    let mut held = Vec::new();
    let mut exhausted = false;
    for _ in 0..4096 {
        match b.malloc(256 * 1024) {
            Ok((h, _)) => held.push(h),
            Err(AllocError::Exhausted) => {
                exhausted = true;
                break;
            }
            Err(e) => panic!("real:hermes: expected Exhausted, got {e}"),
        }
    }
    assert!(exhausted, "the small heap must exhaust within the cap");
    assert!(!held.is_empty(), "some allocations landed first");
    let half = held.len() / 2;
    for h in held.drain(..half.max(1)) {
        b.free(h);
    }
    let (h, _) = b
        .malloc(256 * 1024)
        .expect("freed memory serves new requests");
    b.free(h);
    for h in held {
        b.free(h);
    }
    assert_eq!(b.stats().live, 0, "real:hermes: fully drained");
    b.check().expect("heap integrity after exhaust/recover");
}

#[test]
fn fault_backend_schedule_is_deterministic() {
    let schedule = |seed: u64| -> Vec<bool> {
        let cfg = FaultConfig::new(seed).with_exhaust_rate(0.25);
        let mut b = FaultBackend::new(RealSystemBackend::new(), cfg);
        (0..200)
            .map(|_| match b.malloc(1024) {
                Ok((h, _)) => {
                    b.free(h);
                    false
                }
                Err(_) => true,
            })
            .collect()
    };
    let a = schedule(21);
    assert_eq!(a, schedule(21), "same seed, same failure schedule");
    assert!(a.iter().any(|&f| f), "the rate injected something");
    assert!(!a.iter().all(|&f| f), "and let something through");
    assert_ne!(a, schedule(22), "different seed, different schedule");
}

#[test]
fn clock_domains_match_backend_families() {
    use hermes_sim::clock::Clock;
    for b in all_backends() {
        let kind = b.kind();
        assert_eq!(
            b.clock().is_virtual(),
            !kind.is_real(),
            "{kind}: clock domain matches the backend family"
        );
    }
}
