//! Backend conformance: one shared suite instantiated against every
//! `AllocatorBackend` implementation — the four sim adapters and both
//! real wall-clock backends. Any new backend gets the same contract
//! checks for free by joining `all_backends`.

use hermes_allocators::{
    AllocError, AllocatorBackend, AllocatorKind, BackendKind, RealHermesBackend, RealSystemBackend,
    SimBackend, SimEnv,
};
use hermes_core::rt::HermesHeapConfig;
use hermes_core::HermesConfig;
use hermes_os::config::OsConfig;
use hermes_sim::time::SimDuration;

/// Builds one instance of every backend implementation. Each sim
/// adapter gets its own environment; the `SimEnv` handles are kept
/// alive inside the backend via `Arc`, so dropping the locals is fine.
fn all_backends() -> Vec<Box<dyn AllocatorBackend>> {
    let cfg = HermesConfig::default();
    let mut out: Vec<Box<dyn AllocatorBackend>> = Vec::new();
    for kind in AllocatorKind::ALL {
        let env = SimEnv::new(OsConfig::small_test_node());
        out.push(Box::new(SimBackend::new(kind, &env, 11, &cfg)));
    }
    out.push(Box::new(
        RealHermesBackend::with_heap_config(HermesHeapConfig::small()).expect("arena reservation"),
    ));
    out.push(Box::new(RealSystemBackend::new()));
    out
}

#[test]
fn malloc_free_round_trips() {
    for mut b in all_backends() {
        let label = b.kind().label();
        for size in [1usize, 64, 1024, 64 * 1024, 200 * 1024] {
            let (h, lat) = b
                .malloc(size)
                .unwrap_or_else(|e| panic!("{label}: malloc({size}) failed: {e}"));
            assert!(
                lat > SimDuration::ZERO,
                "{label}: malloc({size}) reports a positive latency"
            );
            let _ = b.access(h, size);
            b.free(h);
        }
        let s = b.stats();
        assert_eq!(s.live, 0, "{label}: everything freed");
        assert_eq!(s.live_bytes, 0, "{label}: no bytes held");
        assert_eq!(s.alloc_count, 5, "{label}");
        assert_eq!(s.free_count, 5, "{label}");
        b.check().unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn realloc_round_trips_and_counts() {
    for mut b in all_backends() {
        let label = b.kind().label();
        let (h, _) = b.malloc(100).unwrap();
        let (h, _) = b
            .realloc(h, 10_000)
            .unwrap_or_else(|e| panic!("{label}: grow failed: {e}"));
        let (h, _) = b
            .realloc(h, 50)
            .unwrap_or_else(|e| panic!("{label}: shrink failed: {e}"));
        b.free(h);
        let s = b.stats();
        assert_eq!(s.live, 0, "{label}: realloc chain fully retired");
        assert_eq!(s.realloc_count, 2, "{label}");
        assert_eq!(s.alloc_count, s.free_count, "{label}: allocs balance frees");
    }
}

#[test]
fn stats_counters_are_monotone() {
    for mut b in all_backends() {
        let label = b.kind().label();
        let mut prev = b.stats();
        let mut live = Vec::new();
        for i in 0..32usize {
            if i % 3 == 2 {
                if let Some(h) = live.pop() {
                    b.free(h);
                }
            } else {
                live.push(b.malloc(512 + i * 64).unwrap().0);
            }
            b.advance();
            let s = b.stats();
            assert!(s.alloc_count >= prev.alloc_count, "{label}: alloc_count");
            assert!(s.free_count >= prev.free_count, "{label}: free_count");
            assert!(
                s.realloc_count >= prev.realloc_count,
                "{label}: realloc_count"
            );
            assert_eq!(
                s.live as usize,
                live.len(),
                "{label}: live gauge tracks handles"
            );
            prev = s;
        }
        for h in live {
            b.free(h);
        }
    }
}

#[test]
fn cross_thread_free_lands_on_the_owner() {
    // Allocate on this thread, move the backend (handles are plain
    // ids), free on another: the free must route back to whatever owns
    // the memory — Hermes' shard range table, the sims' OS model — and
    // leave the stats balanced.
    for mut b in all_backends() {
        let label = b.kind().label();
        let (h, _) = b.malloc(2048).unwrap();
        let b = std::thread::spawn(move || {
            b.free(h);
            b
        })
        .join()
        .unwrap_or_else(|_| panic!("{label}: freeing thread panicked"));
        let s = b.stats();
        assert_eq!(s.live, 0, "{label}");
        assert_eq!(s.free_count, 1, "{label}");
        b.check().unwrap_or_else(|e| panic!("{label}: {e}"));
    }
}

#[test]
fn free_of_unknown_handle_is_a_safe_noop_for_real_backends() {
    for kind in [BackendKind::RealHermes, BackendKind::RealSystem] {
        let mut b: Box<dyn AllocatorBackend> = match kind {
            BackendKind::RealHermes => {
                Box::new(RealHermesBackend::with_heap_config(HermesHeapConfig::small()).unwrap())
            }
            _ => Box::new(RealSystemBackend::new()),
        };
        let bogus = hermes_allocators::AllocHandle(12345);
        assert_eq!(b.free(bogus), SimDuration::ZERO, "{kind}");
        assert_eq!(b.stats().free_count, 0, "{kind}: nothing was freed");
    }
}

#[test]
fn oversized_requests_fail_typed_on_real_backends() {
    let mut hermes = RealHermesBackend::with_heap_config(HermesHeapConfig::small()).unwrap();
    match hermes.malloc(1 << 40) {
        Err(AllocError::Oversized { requested, .. }) => assert_eq!(requested, 1 << 40),
        other => panic!("real:hermes expected Oversized, got {other:?}"),
    }
    let mut system = RealSystemBackend::new();
    match system.malloc(isize::MAX as usize) {
        Err(AllocError::Oversized { .. }) => {}
        other => panic!("real:system expected Oversized, got {other:?}"),
    }
}

#[test]
fn clock_domains_match_backend_families() {
    use hermes_sim::clock::Clock;
    for b in all_backends() {
        let kind = b.kind();
        assert_eq!(
            b.clock().is_virtual(),
            !kind.is_real(),
            "{kind}: clock domain matches the backend family"
        );
    }
}
