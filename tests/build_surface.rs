//! Smoke test for the build surface: every allocator and service kind
//! must be constructible through the public factories, so a manifest or
//! feature regression fails here in tier-1 instead of only at bench time.

use hermes::allocators::{build_allocator, build_backend, AllocatorKind, BackendKind, SimEnv};
use hermes::core::HermesConfig;
use hermes::os::prelude::*;
use hermes::services::{build_service_on, ServiceKind};
use hermes::sim::time::SimTime;

#[test]
fn every_allocator_kind_builds_and_allocates() {
    let mut os = Os::new(OsConfig::small_test_node());
    let cfg = HermesConfig::default();
    for kind in AllocatorKind::ALL {
        let mut alloc = build_allocator(kind, &mut os, 1, &cfg);
        assert_eq!(alloc.kind(), kind, "factory built the requested kind");
        let (handle, latency) = alloc
            .malloc(4096, SimTime::ZERO, &mut os)
            .unwrap_or_else(|e| panic!("{kind:?}: malloc failed: {e:?}"));
        assert!(latency.as_nanos() > 0, "{kind:?}: latency must be positive");
        alloc.free(handle, SimTime::from_micros(1), &mut os);
    }
}

#[test]
fn every_service_kind_builds_over_every_sim_backend() {
    let cfg = HermesConfig::default();
    for service in ServiceKind::ALL {
        for kind in AllocatorKind::ALL {
            let env = SimEnv::new(OsConfig::small_test_node());
            let mut svc = build_service_on(service, BackendKind::Sim(kind), Some(&env), 2, &cfg)
                .unwrap_or_else(|e| panic!("{service}/{kind:?}: build failed: {e}"));
            assert_eq!(svc.name(), service.name());
            let q = svc
                .query(1024)
                .unwrap_or_else(|e| panic!("{service}/{kind:?}: query failed: {e}"));
            assert!(q.total().as_nanos() > 0);
        }
    }
}

#[test]
fn every_service_kind_builds_over_the_real_backends() {
    let cfg = HermesConfig::default();
    for service in ServiceKind::ALL {
        for backend in [BackendKind::RealSystem, BackendKind::RealHermes] {
            let mut svc = build_service_on(service, backend, None, 2, &cfg)
                .unwrap_or_else(|e| panic!("{service}/{backend}: build failed: {e}"));
            let q = svc
                .query(1024)
                .unwrap_or_else(|e| panic!("{service}/{backend}: query failed: {e}"));
            assert!(q.total().as_nanos() > 0);
        }
    }
}

#[test]
fn every_backend_kind_builds_through_the_factory() {
    let cfg = HermesConfig::default();
    let env = SimEnv::new(OsConfig::small_test_node());
    for kind in [
        BackendKind::Sim(AllocatorKind::Hermes),
        BackendKind::RealSystem,
        BackendKind::RealHermes,
    ] {
        let mut b = build_backend(kind, Some(&env), 3, &cfg)
            .unwrap_or_else(|e| panic!("{kind}: build failed: {e}"));
        assert_eq!(b.kind(), kind);
        let (h, lat) = b
            .malloc(4096)
            .unwrap_or_else(|e| panic!("{kind}: malloc failed: {e}"));
        assert!(lat.as_nanos() > 0, "{kind}: latency must be positive");
        b.free(h);
    }
}

#[test]
fn facade_reexports_are_wired() {
    // One symbol per re-exported member crate, so a facade manifest
    // regression (missing dependency edge) is caught at compile time.
    let _ = hermes::core::DEFAULT_MMAP_THRESHOLD;
    let _ = hermes::sim::time::SimDuration::from_nanos(1);
    let _ = hermes::batch::DEFAULT_FREE_FLOOR;
    let _ = hermes::workloads::PRESSURE_LEVELS;
    let _ = AllocatorKind::ALL;
    let _ = ServiceKind::ALL;
}
