//! Smoke test for the build surface: every allocator and service kind
//! must be constructible through the public factories, so a manifest or
//! feature regression fails here in tier-1 instead of only at bench time.

use hermes::allocators::{build_allocator, AllocatorKind};
use hermes::core::HermesConfig;
use hermes::os::prelude::*;
use hermes::services::{build_service, ServiceKind};
use hermes::sim::time::SimTime;

#[test]
fn every_allocator_kind_builds_and_allocates() {
    let mut os = Os::new(OsConfig::small_test_node());
    let cfg = HermesConfig::default();
    for kind in AllocatorKind::ALL {
        let mut alloc = build_allocator(kind, &mut os, 1, &cfg);
        assert_eq!(alloc.kind(), kind, "factory built the requested kind");
        let (handle, latency) = alloc
            .malloc(4096, SimTime::ZERO, &mut os)
            .unwrap_or_else(|e| panic!("{kind:?}: malloc failed: {e:?}"));
        assert!(latency.as_nanos() > 0, "{kind:?}: latency must be positive");
        alloc.free(handle, SimTime::from_micros(1), &mut os);
    }
}

#[test]
fn every_service_kind_builds_over_every_allocator() {
    let cfg = HermesConfig::default();
    for service in ServiceKind::ALL {
        for kind in AllocatorKind::ALL {
            let mut os = Os::new(OsConfig::small_test_node());
            let mut svc = build_service(service, kind, &mut os, 2, &cfg)
                .unwrap_or_else(|e| panic!("{service}/{kind:?}: build failed: {e:?}"));
            assert_eq!(svc.name(), service.name());
            let q = svc
                .query(1024, SimTime::ZERO, &mut os)
                .unwrap_or_else(|e| panic!("{service}/{kind:?}: query failed: {e:?}"));
            assert!(q.total().as_nanos() > 0);
        }
    }
}

#[test]
fn facade_reexports_are_wired() {
    // One symbol per re-exported member crate, so a facade manifest
    // regression (missing dependency edge) is caught at compile time.
    let _ = hermes::core::DEFAULT_MMAP_THRESHOLD;
    let _ = hermes::sim::time::SimDuration::from_nanos(1);
    let _ = hermes::batch::DEFAULT_FREE_FLOOR;
    let _ = hermes::workloads::PRESSURE_LEVELS;
    let _ = AllocatorKind::ALL;
    let _ = ServiceKind::ALL;
}
