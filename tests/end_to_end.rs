//! Cross-crate integration tests: end-to-end scenario runs with fixed
//! seeds asserting the paper's qualitative shapes.

use hermes::allocators::AllocatorKind;
use hermes::services::ServiceKind;
use hermes::workloads::{
    run_colocation, run_micro, run_throughput, ColocationConfig, MicroConfig, Scenario, Slo,
    ThroughputConfig, ThroughputScenario,
};
use hermes_sim::time::SimDuration;

const MICRO_TOTAL: usize = 48 << 20;

fn micro_summary(kind: AllocatorKind, sc: Scenario, size: usize) -> hermes::sim::stats::Summary {
    let cfg = MicroConfig::paper(kind, sc, size).scaled(MICRO_TOTAL);
    let mut r = run_micro(&cfg);
    r.latencies.summary()
}

#[test]
fn figure3_shape_pressure_ordering() {
    let ded = micro_summary(AllocatorKind::Glibc, Scenario::Dedicated, 1024);
    let anon = micro_summary(AllocatorKind::Glibc, Scenario::AnonPressure, 1024);
    let file = micro_summary(AllocatorKind::Glibc, Scenario::FilePressure, 1024);
    assert!(anon.avg > file.avg, "anon {} > file {}", anon.avg, file.avg);
    assert!(file.avg > ded.avg, "file {} > ded {}", file.avg, ded.avg);
    assert!(anon.p99 > ded.p99);
}

#[test]
fn figure7_shape_hermes_wins_small_requests() {
    for sc in Scenario::ALL {
        let h = micro_summary(AllocatorKind::Hermes, sc, 1024);
        let g = micro_summary(AllocatorKind::Glibc, sc, 1024);
        assert!(h.avg < g.avg, "{sc}: hermes {} < glibc {}", h.avg, g.avg);
        assert!(
            h.p99 < g.p99,
            "{sc}: hermes p99 {} < glibc {}",
            h.p99,
            g.p99
        );
    }
}

#[test]
fn figure7_shape_tcmalloc_low_avg_long_tail() {
    let t = micro_summary(AllocatorKind::Tcmalloc, Scenario::Dedicated, 1024);
    let g = micro_summary(AllocatorKind::Glibc, Scenario::Dedicated, 1024);
    assert!(t.avg < g.avg, "tcmalloc avg {} < glibc {}", t.avg, g.avg);
    assert!(t.p99 > g.p99, "tcmalloc p99 {} > glibc {}", t.p99, g.p99);
}

#[test]
fn figure8_shape_large_requests_anon_gap_is_biggest() {
    let red = |sc| {
        let h = micro_summary(AllocatorKind::Hermes, sc, 256 * 1024);
        let g = micro_summary(AllocatorKind::Glibc, sc, 256 * 1024);
        h.reduction_vs(&g).avg
    };
    let ded = red(Scenario::Dedicated);
    let anon = red(Scenario::AnonPressure);
    assert!(
        anon > ded,
        "anon reduction {anon:.1}% > dedicated {ded:.1}%"
    );
    assert!(anon > 25.0, "anon reduction substantial: {anon:.1}%");
}

#[test]
fn figure12_shape_rocksdb_under_full_pressure() {
    let run = |kind| {
        let mut cfg = ColocationConfig::paper(ServiceKind::Rocksdb, kind, 200 * 1024, 1.0);
        cfg.queries = 400;
        let mut r = run_colocation(&cfg);
        r.totals.summary()
    };
    let h = run(AllocatorKind::Hermes);
    let g = run(AllocatorKind::Glibc);
    assert!(h.p90 < g.p90, "hermes p90 {} < glibc {}", h.p90, g.p90);
    assert!(h.p99 <= g.p99, "hermes p99 {} <= glibc {}", h.p99, g.p99);
}

#[test]
fn figure13_shape_slo_violations_ordering() {
    let run = |kind, level| {
        let mut cfg = ColocationConfig::paper(ServiceKind::Redis, kind, 1024, level);
        cfg.queries = 1_500;
        run_colocation(&cfg)
    };
    let mut baseline = run(AllocatorKind::Glibc, 0.0);
    let slo = Slo::from_baseline(&mut baseline.totals);
    let hermes = slo.violation_pct(&run(AllocatorKind::Hermes, 1.25).totals);
    let glibc = slo.violation_pct(&run(AllocatorKind::Glibc, 1.25).totals);
    assert!(
        hermes <= glibc + 1.0,
        "hermes violations {hermes:.1}% <= glibc {glibc:.1}%"
    );
}

#[test]
fn table1_shape_throughput_ordering() {
    let run = |scenario| {
        run_throughput(&ThroughputConfig {
            service: ServiceKind::Rocksdb,
            scenario,
            duration: SimDuration::from_secs(1800),
            seed: 11,
        })
    };
    let default = run(ThroughputScenario::Default);
    let killing = run(ThroughputScenario::Killing);
    let dedicated = run(ThroughputScenario::Dedicated);
    assert!(default.jobs_completed > 0, "co-location makes progress");
    assert!(killing.jobs_completed <= default.jobs_completed);
    assert_eq!(dedicated.jobs_completed, 0);
}

#[test]
fn determinism_across_crates() {
    let cfg = ColocationConfig::paper(ServiceKind::Redis, AllocatorKind::Hermes, 1024, 0.75);
    let mut cfg = cfg;
    cfg.queries = 500;
    let a = run_colocation(&cfg);
    let b = run_colocation(&cfg);
    assert_eq!(
        a.totals.samples_ns(),
        b.totals.samples_ns(),
        "same seed, same trace"
    );
}
