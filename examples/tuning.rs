//! Tuning the reservation factor (§5.4 and §6 "Discussions").
//!
//! Sweeps `RSV_FACTOR` on the micro benchmark under anonymous pressure and
//! prints the latency reduction against Glibc plus the memory cost of the
//! standing reserve, so an operator can pick a factor for their service.
//!
//! Run with: `cargo run --release --example tuning`

use hermes::allocators::AllocatorKind;
use hermes::core::HermesConfig;
use hermes::sim::report::Table;
use hermes::workloads::{run_micro, MicroConfig, Scenario, FACTORS};

fn main() {
    println!("RSV_FACTOR sweep: 1 KB requests under anonymous pressure\n");
    let total = 64 << 20;

    let glibc = {
        let cfg =
            MicroConfig::paper(AllocatorKind::Glibc, Scenario::AnonPressure, 1024).scaled(total);
        let mut r = run_micro(&cfg);
        r.latencies.summary()
    };

    let mut table = Table::new(["factor", "avg red.", "p99 red.", "reserved-unused"]);
    for &factor in &FACTORS {
        let mut cfg =
            MicroConfig::paper(AllocatorKind::Hermes, Scenario::AnonPressure, 1024).scaled(total);
        cfg.hermes = HermesConfig::default().with_rsv_factor(factor);
        let mut r = run_micro(&cfg);
        let red = r.latencies.summary().reduction_vs(&glibc);
        table.row_vec(vec![
            format!("{factor:.1}x"),
            format!("{:+.1}%", red.avg),
            format!("{:+.1}%", red.p99),
            format!("{:.1} MB", r.reserved_unused as f64 / (1 << 20) as f64),
        ]);
    }
    print!("{}", table.render());
    println!("\nThe paper settles on 2.0x: past it the latency gains plateau");
    println!("while the reserved-but-unused memory keeps growing.");
}
