//! Co-location scenario on the simulated 128 GB node: a RocksDB-like
//! latency-critical service shares the machine with three Spark-style
//! batch jobs at the 100 % memory-pressure level, once per allocator.
//!
//! Prints the paper's §5.3 story: under the default stack the batch jobs
//! push query latency past the SLO; Hermes holds it down while keeping
//! batch throughput.
//!
//! Run with: `cargo run --release --example colocation`

use hermes::allocators::AllocatorKind;
use hermes::services::ServiceKind;
use hermes::sim::report::{fmt_us, Table};
use hermes::workloads::{run_colocation, ColocationConfig, Slo};

fn main() {
    println!("RocksDB + 3 Spark-style jobs @ 100% memory pressure (simulated)\n");

    // The SLO comes from the Glibc dedicated-system baseline, exactly as
    // the paper defines it.
    let mut base_cfg =
        ColocationConfig::paper(ServiceKind::Rocksdb, AllocatorKind::Glibc, 1024, 0.0);
    base_cfg.queries = 4_000;
    let mut baseline = run_colocation(&base_cfg);
    let slo = Slo::from_baseline(&mut baseline.totals);
    println!("SLO (Glibc dedicated p90): {}\n", slo.threshold);

    let mut table = Table::new(["allocator", "avg(us)", "p90(us)", "p99(us)", "SLO viol."]);
    for kind in AllocatorKind::ALL {
        let mut cfg = ColocationConfig::paper(ServiceKind::Rocksdb, kind, 1024, 1.0);
        cfg.queries = 4_000;
        let mut res = run_colocation(&cfg);
        let s = res.totals.summary();
        table.row_vec(vec![
            kind.name().to_string(),
            fmt_us(s.avg),
            fmt_us(s.p90),
            fmt_us(s.p99),
            format!("{:.1}%", slo.violation_pct(&res.totals)),
        ]);
    }
    print!("{}", table.render());
    println!("\nHermes' management thread pre-constructs mappings and its daemon");
    println!("fadvises batch file cache away, so queries dodge the reclaim path.");
}
