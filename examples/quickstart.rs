//! Quickstart: use Hermes as the process-wide allocator.
//!
//! This is deliverable R3 of the paper: applications adopt Hermes without
//! source changes beyond installing the allocator. The global facade boots
//! from static arenas and starts the memory management thread, which
//! reserves memory — mappings pre-constructed — ahead of your allocation
//! bursts.
//!
//! Run with: `cargo run --release --example quickstart`

use hermes::core::rt::Hermes;
use std::time::Instant;

#[global_allocator]
static ALLOC: Hermes = Hermes;

fn burst(label: &str, n: usize, size: usize) {
    let t0 = Instant::now();
    let mut keep: Vec<Vec<u8>> = Vec::with_capacity(n);
    for i in 0..n {
        // Writing forces the virtual-physical mapping to exist — the cost
        // Hermes moves off the critical path.
        keep.push(vec![(i & 0xff) as u8; size]);
    }
    let per = t0.elapsed().as_nanos() / n as u128;
    println!("{label}: {n} x {size} B allocations, {per} ns/alloc");
    drop(keep);
}

fn main() {
    // Boot the arenas and start the management thread (recommended; the
    // allocator also works lazily without this call).
    let heap = Hermes::init();
    println!("Hermes global allocator initialised");

    // A cold burst: the manager has had no demand history yet.
    burst("cold burst  ", 20_000, 1024);

    // Let the management thread observe demand and reserve ahead.
    std::thread::sleep(std::time::Duration::from_millis(20));
    burst("warm burst  ", 20_000, 1024);

    // Large allocations ride the segregated pool.
    burst("large (256K)", 200, 256 * 1024);

    let c = heap.counters();
    println!(
        "\ncounters: {} allocs, {} frees | small fast-path {:.1}% | large pool hits {:.1}%",
        c.alloc_count,
        c.free_count,
        c.small_fast_ratio() * 100.0,
        c.large_fast_ratio() * 100.0,
    );
    println!(
        "manager: {} rounds, reserved {} KiB, standing reserve {} KiB",
        c.manager_rounds,
        c.reserved_bytes / 1024,
        heap.reserved_unused_bytes() / 1024,
    );
}
