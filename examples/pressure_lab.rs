//! Pressure laboratory: reproduce the paper's §2.2 case study on the
//! simulated node — how anonymous-page and file-cache pressure prolong
//! Glibc allocation latency, and what each Hermes ingredient buys back.
//!
//! Run with: `cargo run --release --example pressure_lab`

use hermes::allocators::AllocatorKind;
use hermes::sim::report::{summary_row_us, Table};
use hermes::workloads::{run_micro, MicroConfig, Scenario};

fn main() {
    println!("Micro benchmark: 1 KB requests, 96 MiB total, simulated 128 GB node\n");
    let total = 96 << 20;

    let mut table = Table::new(["series", "avg(us)", "p75", "p90", "p95", "p99"]);
    for scenario in Scenario::ALL {
        for kind in [AllocatorKind::Glibc, AllocatorKind::Hermes] {
            let cfg = MicroConfig::paper(kind, scenario, 1024).scaled(total);
            let mut r = run_micro(&cfg);
            table.row_vec(summary_row_us(
                &format!("{}/{}", kind.name(), scenario.name()),
                &r.latencies.summary(),
            ));
        }
    }
    // The "Hermes w/o rec" variant shows what proactive reclamation adds.
    let mut norec =
        MicroConfig::paper(AllocatorKind::Hermes, Scenario::FilePressure, 1024).scaled(total);
    norec.daemon = false;
    let mut r = run_micro(&norec);
    table.row_vec(summary_row_us(
        "Hermes w/o rec/file",
        &r.latencies.summary(),
    ));
    print!("{}", table.render());

    println!("\nReading the table:");
    println!("  * anon pressure hurts Glibc the most (reclaim must swap);");
    println!("  * file pressure is milder (clean cache drops cheaply);");
    println!("  * Hermes' advance reservation flattens both, and proactive");
    println!("    reclamation recovers the remaining file-pressure penalty.");
}
